//! Differential property tests for the live segmented index.
//!
//! The contract under test: after **any** interleaving of adds, deletes,
//! flushes, and merges, every engine — BOOL, PPRED, NPRED, COMP, exhaustive
//! scored ranking, and streaming top-k, on both physical layouts — run over
//! a [`Snapshot`] produces results *bit-identical* to a monolithic engine
//! rebuilt from scratch over the surviving documents. Global node ids remap
//! to the rebuild's dense ids by survivor order; scores are compared by
//! their exact bit patterns (the merged statistics and the canonical
//! combine order make them exactly equal, not merely close).
//!
//! Snapshot isolation is part of the same contract: a snapshot taken
//! mid-sequence keeps answering for the collection as it was, no matter
//! what later mutations and merges do — including merges running on the
//! background thread while the snapshot is held.

use ftsl_core::{Ftsl, LiveConfig, LiveFtsl, RankModel};
use ftsl_exec::engine::{EngineKind, ExecOptions, Executor};
use ftsl_exec::snapshot::SnapshotExecutor;
use ftsl_exec::{ScoreModel, ScoredTopK};
use ftsl_index::IndexLayout;
use ftsl_model::NodeId;
use ftsl_predicates::PredicateRegistry;
use ftsl_scoring::{ScoreStats, SnapshotStats, TfIdfModel};
use proptest::prelude::*;
use std::collections::HashMap;

const VOCAB: [&str; 6] = ["alpha", "beta", "gamma", "delta", "eps", "zeta"];

fn prop_cases() -> u32 {
    std::env::var("FTSL_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24)
}

/// One mutation against the live index.
#[derive(Clone, Debug)]
enum Op {
    /// Add a document rendered from vocabulary indices (6/7 insert sentence
    /// breaks, 8 paragraph breaks, so positional predicates have structure).
    Add(Vec<usize>),
    /// Delete the `i % docs`-th ever-added document (no-op when already
    /// deleted).
    Delete(usize),
    /// Seal the write buffer.
    Flush,
    /// One round of the tiered merge policy.
    MergeTier,
    /// Full compaction.
    MergeAll,
}

fn render(tokens: &[usize]) -> String {
    let mut text = String::new();
    for &t in tokens {
        match t {
            0..=5 => {
                text.push_str(VOCAB[t]);
                text.push(' ');
            }
            6 | 7 => text.push_str(". "),
            _ => text.push_str("\n\n"),
        }
    }
    text
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            5 => proptest::collection::vec(0usize..9, 0..12).prop_map(Op::Add),
            3 => (0usize..64).prop_map(Op::Delete),
            2 => Just(Op::Flush),
            1 => Just(Op::MergeTier),
            1 => Just(Op::MergeAll),
        ],
        1..32,
    )
}

fn manual_config() -> LiveConfig {
    LiveConfig {
        background_merge: false,
        // Small fan-in and threshold so random sequences actually exercise
        // auto-flush and tiered merging.
        flush_threshold: 6,
        merge_fanin: 2,
        ..LiveConfig::default()
    }
}

/// Replay `ops`; returns the live engine plus the surviving `(global id,
/// text)` pairs in ascending global order.
fn apply(ops: &[Op]) -> (LiveFtsl, Vec<(u32, String)>) {
    let engine = LiveFtsl::with_config(manual_config());
    let mut docs: Vec<(u32, String, bool)> = Vec::new();
    for op in ops {
        apply_one(&engine, op, &mut docs);
    }
    let survivors = docs
        .into_iter()
        .filter(|(_, _, alive)| *alive)
        .map(|(g, t, _)| (g, t))
        .collect();
    (engine, survivors)
}

fn apply_one(engine: &LiveFtsl, op: &Op, docs: &mut Vec<(u32, String, bool)>) {
    match op {
        Op::Add(tokens) => {
            let text = render(tokens);
            let node = engine.add(&text);
            docs.push((node.0, text, true));
        }
        Op::Delete(i) => {
            if !docs.is_empty() {
                let i = i % docs.len();
                if docs[i].2 {
                    assert!(engine.delete(NodeId(docs[i].0)), "live doc must delete");
                    docs[i].2 = false;
                }
            }
        }
        Op::Flush => {
            engine.flush();
        }
        Op::MergeTier => {
            engine.live_index().maybe_merge();
        }
        Op::MergeAll => {
            engine.merge();
        }
    }
}

/// Frozen oracle over the survivors, plus the global→dense id map.
fn rebuild(survivors: &[(u32, String)]) -> (Ftsl, HashMap<u32, u32>) {
    let texts: Vec<&str> = survivors.iter().map(|(_, t)| t.as_str()).collect();
    let remap = survivors
        .iter()
        .enumerate()
        .map(|(dense, &(global, _))| (global, dense as u32))
        .collect();
    (Ftsl::from_texts(&texts), remap)
}

/// The query battery: one representative per engine family.
const SET_QUERIES: &[(&str, EngineKind)] = &[
    ("'alpha'", EngineKind::Auto),
    ("'alpha' AND 'beta'", EngineKind::Auto),
    ("'alpha' AND NOT 'beta'", EngineKind::Auto),
    ("NOT 'alpha'", EngineKind::Auto),
    ("'gamma' OR ('beta' AND 'eps')", EngineKind::Auto),
    (
        "SOME p1 SOME p2 (p1 HAS 'alpha' AND p2 HAS 'beta' AND distance(p1,p2,3))",
        EngineKind::Auto, // PPRED
    ),
    (
        "SOME p1 SOME p2 (p1 HAS 'alpha' AND p2 HAS 'gamma' AND ordered(p1,p2) AND samepara(p1,p2))",
        EngineKind::Auto, // PPRED, structured positions
    ),
    (
        "SOME p1 SOME p2 (p1 HAS 'alpha' AND p2 HAS 'alpha' AND diffpos(p1,p2))",
        EngineKind::Auto, // NPRED
    ),
    ("EVERY p1 (p1 HAS 'alpha')", EngineKind::Auto), // COMP
    ("'alpha' AND 'beta'", EngineKind::Comp),        // forced materialization
];

/// Compare every set-producing engine on a snapshot against the frozen
/// oracle, on both layouts.
fn assert_sets_match(
    engine: &LiveFtsl,
    frozen: &Ftsl,
    remap: &HashMap<u32, u32>,
    ctx: &str,
) -> Result<(), ()> {
    let snapshot = engine.snapshot();
    let reg = PredicateRegistry::with_builtins();
    for layout in [IndexLayout::Decoded, IndexLayout::Blocks] {
        let options = ExecOptions {
            layout,
            ..Default::default()
        };
        let live_exec = SnapshotExecutor::with_options(&snapshot, &reg, options);
        let frozen_exec = Executor::with_options(frozen.corpus(), frozen.index(), &reg, options);
        for (query, kind) in SET_QUERIES {
            let live_out = live_exec.run_str(query, *kind).expect("live run");
            let frozen_out = frozen_exec.run_str(query, *kind).expect("frozen run");
            let live_dense: Vec<u32> = live_out
                .nodes
                .iter()
                .map(|n| *remap.get(&n.0).expect("live result must be a survivor"))
                .collect();
            let frozen_ids: Vec<u32> = frozen_out.nodes.iter().map(|n| n.0).collect();
            prop_assert_eq!(
                &live_dense,
                &frozen_ids,
                "{}: {} on {:?} diverged",
                ctx,
                query,
                layout
            );
        }
    }
    Ok(())
}

const SCORED_QUERIES: &[&str] = &[
    "'alpha'",
    "'alpha' OR 'beta' OR 'eps'",
    "('alpha' AND 'beta') OR NOT 'gamma'",
    "'zeta' AND NOT 'alpha'",
];

/// Compare exhaustive ranking and streaming top-k, bit-exactly.
fn assert_scores_match(
    engine: &LiveFtsl,
    frozen: &Ftsl,
    remap: &HashMap<u32, u32>,
    ctx: &str,
) -> Result<(), ()> {
    for model in [RankModel::TfIdf, RankModel::Pra] {
        for query in SCORED_QUERIES {
            let live = engine.search_ranked(query, model).expect("live rank");
            let frozen_r = frozen.search_ranked(query, model).expect("frozen rank");
            prop_assert_eq!(
                live.hits.len(),
                frozen_r.hits.len(),
                "{}: {} {:?} hit count",
                ctx,
                query,
                model
            );
            for (l, f) in live.hits.iter().zip(&frozen_r.hits) {
                prop_assert_eq!(
                    remap[&l.0 .0],
                    f.0 .0,
                    "{}: {} {:?} order",
                    ctx,
                    query,
                    model
                );
                prop_assert_eq!(
                    l.1.to_bits(),
                    f.1.to_bits(),
                    "{}: {} {:?} score bits",
                    ctx,
                    query,
                    model
                );
            }
            for k in [1usize, 3, 10] {
                let live = engine.search_top_k(query, model, k).expect("live topk");
                let frozen_t = frozen.search_top_k(query, model, k).expect("frozen topk");
                prop_assert_eq!(live.hits.len(), frozen_t.hits.len());
                for (l, f) in live.hits.iter().zip(&frozen_t.hits) {
                    prop_assert_eq!(remap[&l.0 .0], f.0 .0);
                    prop_assert_eq!(l.1.to_bits(), f.1.to_bits());
                }
            }
        }
    }
    // The streaming union on the Blocks layout (per-segment block-max
    // pruning) against the frozen Blocks run.
    let snapshot = engine.snapshot();
    let stats = SnapshotStats::compute(&snapshot);
    let reg = PredicateRegistry::with_builtins();
    let options = ExecOptions {
        layout: IndexLayout::Blocks,
        ..Default::default()
    };
    let q = ftsl_lang::parse("'alpha' OR 'beta' OR 'eps'", ftsl_lang::Mode::Comp).unwrap();
    let tokens = ["alpha", "beta", "eps"];
    let live_model = stats.tfidf_model(&tokens, &snapshot);
    let frozen_stats = ScoreStats::compute(frozen.corpus(), frozen.index());
    let frozen_model = TfIdfModel::for_query(&tokens, frozen.corpus(), &frozen_stats);
    let live_out = SnapshotExecutor::with_options(&snapshot, &reg, options)
        .run_top_k(
            &q,
            ScoredTopK { k: 5 },
            &stats,
            &ScoreModel::TfIdf(&live_model),
        )
        .expect("live blocks topk");
    let frozen_out = ftsl_exec::scored::run_scored_top_k(
        &q,
        frozen.corpus(),
        frozen.index(),
        &frozen_stats,
        &ScoreModel::TfIdf(&frozen_model),
        IndexLayout::Blocks,
        ScoredTopK { k: 5 },
    )
    .expect("frozen blocks topk");
    prop_assert_eq!(live_out.hits.len(), frozen_out.hits.len(), "{}", ctx);
    for (l, f) in live_out.hits.iter().zip(&frozen_out.hits) {
        prop_assert_eq!(remap[&l.0 .0], f.0 .0, "{}: blocks topk order", ctx);
        prop_assert_eq!(l.1.to_bits(), f.1.to_bits(), "{}: blocks topk bits", ctx);
    }
    Ok(())
}

/// Proximity shapes that resolve from the word-pair auxiliary lists.
const PAIR_QUERIES: &[&str] = &[
    "SOME p1 SOME p2 (p1 HAS 'alpha' AND p2 HAS 'beta' AND ordered(p1,p2) AND distance(p1,p2,0))",
    "SOME p1 SOME p2 (p1 HAS 'alpha' AND p2 HAS 'beta' AND ordered(p1,p2) AND window(p1,p2,4))",
    "SOME p1 SOME p2 (p1 HAS 'beta' AND p2 HAS 'gamma' AND distance(p1,p2,2))",
    "SOME p1 SOME p2 (p1 HAS 'alpha' AND p2 HAS 'alpha' AND ordered(p1,p2) AND distance(p1,p2,1))",
];

/// Pair-accelerated evaluation under churn: the snapshot run (pairs on,
/// so phrase/NEAR shapes walk per-segment pair lists with tombstone
/// filtering) must be bit-identical to the *position-intersection oracle*
/// over the monolithic rebuild — deleted documents must never surface via
/// a pair list that still physically contains them. The NEAR top-k facade
/// must agree with the rebuild's facade down to the score bits.
fn assert_pairs_match(
    engine: &LiveFtsl,
    frozen: &Ftsl,
    remap: &HashMap<u32, u32>,
    ctx: &str,
) -> Result<(), ()> {
    let snapshot = engine.snapshot();
    let reg = PredicateRegistry::with_builtins();
    for layout in [IndexLayout::Decoded, IndexLayout::Blocks] {
        let live_exec = SnapshotExecutor::with_options(
            &snapshot,
            &reg,
            ExecOptions {
                layout,
                ..Default::default()
            },
        );
        let oracle_exec = Executor::with_options(
            frozen.corpus(),
            frozen.index(),
            &reg,
            ExecOptions {
                layout,
                use_pairs: false,
                ..Default::default()
            },
        );
        for query in PAIR_QUERIES {
            let live_out = live_exec
                .run_str(query, EngineKind::Auto)
                .expect("live run");
            let oracle_out = oracle_exec
                .run_str(query, EngineKind::Auto)
                .expect("oracle run");
            let live_dense: Vec<u32> = live_out
                .nodes
                .iter()
                .map(|n| *remap.get(&n.0).expect("pair hit must be a survivor"))
                .collect();
            let oracle_ids: Vec<u32> = oracle_out.nodes.iter().map(|n| n.0).collect();
            prop_assert_eq!(
                &live_dense,
                &oracle_ids,
                "{}: pair path diverged on {} ({:?})",
                ctx,
                query,
                layout
            );
        }
    }
    // NEAR top-k: segmented pair walk with global threshold vs the
    // rebuild's single-index walk. The global→dense remap preserves id
    // order, so ranking (score desc, id asc) and score bits must agree.
    for (a, b, bound, ordered) in [
        ("alpha", "beta", 4, true),
        ("beta", "gamma", 3, false),
        ("alpha", "alpha", 2, true),
    ] {
        for k in [1usize, 5, 100] {
            let live = engine.search_near_top_k(a, b, bound, ordered, k);
            let want = frozen.search_near_top_k(a, b, bound, ordered, k);
            prop_assert_eq!(
                live.hits.len(),
                want.hits.len(),
                "{}: near {}-{} k={} hit count",
                ctx,
                a,
                b,
                k
            );
            for (l, f) in live.hits.iter().zip(&want.hits) {
                prop_assert_eq!(
                    remap[&l.0 .0],
                    f.0 .0,
                    "{}: near {}-{} k={} order",
                    ctx,
                    a,
                    b,
                    k
                );
                prop_assert_eq!(
                    l.1.to_bits(),
                    f.1.to_bits(),
                    "{}: near {}-{} k={} score bits",
                    ctx,
                    a,
                    b,
                    k
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(prop_cases()))]

    /// Any interleaving of adds/deletes/flushes/merges: all engines on the
    /// snapshot ≡ the monolithic rebuild, both layouts.
    #[test]
    fn snapshot_equals_monolithic_rebuild(ops in arb_ops()) {
        let (engine, survivors) = apply(&ops);
        let (frozen, remap) = rebuild(&survivors);
        assert_sets_match(&engine, &frozen, &remap, "final state")?;
        assert_scores_match(&engine, &frozen, &remap, "final state")?;
        assert_pairs_match(&engine, &frozen, &remap, "final state")?;
    }

    /// A snapshot taken mid-sequence answers for the state at that moment,
    /// no matter what the rest of the sequence does to the live index.
    #[test]
    fn held_snapshot_is_isolated_from_later_mutations(
        ops in arb_ops(),
        split in 0usize..32,
    ) {
        let split = split.min(ops.len());
        let engine = LiveFtsl::with_config(manual_config());
        let mut docs: Vec<(u32, String, bool)> = Vec::new();
        for op in &ops[..split] {
            apply_one(&engine, op, &mut docs);
        }
        let pinned = engine.snapshot();
        let survivors_then: Vec<(u32, String)> = docs
            .iter()
            .filter(|(_, _, alive)| *alive)
            .map(|(g, t, _)| (*g, t.clone()))
            .collect();
        // Churn on: the pinned snapshot must not move.
        for op in &ops[split..] {
            apply_one(&engine, op, &mut docs);
        }
        engine.merge();

        let (frozen, remap) = rebuild(&survivors_then);
        let reg = PredicateRegistry::with_builtins();
        let exec = SnapshotExecutor::new(&pinned, &reg);
        let frozen_exec = Executor::new(frozen.corpus(), frozen.index(), &reg);
        for (query, kind) in SET_QUERIES {
            let live_out = exec.run_str(query, *kind).expect("pinned run");
            let frozen_out = frozen_exec.run_str(query, *kind).expect("frozen run");
            let live_dense: Vec<u32> = live_out
                .nodes
                .iter()
                .map(|n| *remap.get(&n.0).expect("pinned result must be a then-survivor"))
                .collect();
            let frozen_ids: Vec<u32> = frozen_out.nodes.iter().map(|n| n.0).collect();
            prop_assert_eq!(&live_dense, &frozen_ids, "pinned: {} diverged", query);
        }
    }
}

/// Snapshot isolation under a *background* merge thread: hold a snapshot,
/// churn hard enough to keep the merger busy, and verify the held snapshot
/// still answers byte-for-byte as the frozen rebuild of its moment — while
/// the live index keeps serving the new state correctly.
#[test]
fn held_snapshot_survives_concurrent_background_merges() {
    let engine = LiveFtsl::with_config(LiveConfig {
        background_merge: true,
        flush_threshold: 4,
        merge_fanin: 2,
        ..LiveConfig::default()
    });
    let mut texts = Vec::new();
    for i in 0..24 {
        let text = format!(
            "alpha doc{i} {} beta",
            if i % 3 == 0 { "gamma" } else { "delta" }
        );
        engine.add(&text);
        texts.push(text);
    }
    engine.flush();
    let pinned = engine.snapshot();
    let (frozen, _) = rebuild(
        &texts
            .iter()
            .enumerate()
            .map(|(i, t)| (i as u32, t.clone()))
            .collect::<Vec<_>>(),
    );

    // Churn: deletes and adds with tiny flush threshold wake the merger
    // over and over while we repeatedly query the pinned snapshot.
    let reg = PredicateRegistry::with_builtins();
    for round in 0..30 {
        engine.add(&format!("churn {round} beta eps"));
        if round % 2 == 0 {
            engine.delete(NodeId(round));
        }
        let exec = SnapshotExecutor::new(&pinned, &reg);
        let out = exec
            .run_str("'alpha' AND 'beta'", EngineKind::Auto)
            .unwrap();
        let frozen_out = Executor::new(frozen.corpus(), frozen.index(), &reg)
            .run_str("'alpha' AND 'beta'", EngineKind::Auto)
            .unwrap();
        assert_eq!(
            out.nodes, frozen_out.nodes,
            "pinned snapshot moved during round {round}"
        );
    }
    // Let the merger catch up, then check the *live* view: the churn docs
    // answer (minus the three that were deleted — ids 24/26/28 are churn
    // rounds 0/2/4), and a seeded doc deleted in round 0 is gone.
    std::thread::sleep(std::time::Duration::from_millis(300));
    assert_eq!(engine.search("'eps'").unwrap().nodes.len(), 27);
    assert!(engine.search("'doc0'").unwrap().nodes.is_empty());
    // After a full merge the same answers hold, now from one segment.
    engine.merge();
    assert_eq!(engine.search("'eps'").unwrap().nodes.len(), 27);
    assert!(engine.search("'doc0'").unwrap().nodes.is_empty());
}

/// Deleting documents *after* their segment is sealed leaves their
/// postings physically inside the segment's pair lists — the tombstone
/// filter is the only thing keeping them out of answers. Phrase search,
/// NEAR top-k, and the intersection fallback must all hide them.
#[test]
fn tombstoned_docs_never_surface_via_pair_lists() {
    let engine = LiveFtsl::with_config(LiveConfig {
        background_merge: false,
        flush_threshold: usize::MAX,
        merge_fanin: usize::MAX,
        ..LiveConfig::default()
    });
    let mut ids = Vec::new();
    for i in 0..12 {
        ids.push(engine.add(&format!("alpha beta doc{i}")));
    }
    engine.flush(); // sealed: pair lists now physically hold all 12 docs
    for (i, &id) in ids.iter().enumerate() {
        if i % 2 == 0 {
            assert!(engine.delete(id));
        }
    }

    let phrase =
        "SOME p1 SOME p2 (p1 HAS 'alpha' AND p2 HAS 'beta' AND ordered(p1,p2) AND distance(p1,p2,0))";
    let hits = engine.search(phrase).unwrap();
    let survivors: Vec<u32> = ids
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 2 == 1)
        .map(|(_, id)| id.0)
        .collect();
    assert_eq!(
        hits.node_ids(),
        survivors,
        "phrase over pair lists leaked a tombstone"
    );

    let near = engine.search_near_top_k("alpha", "beta", 4, true, 100);
    let mut near_ids: Vec<u32> = near.hits.iter().map(|(n, _)| n.0).collect();
    near_ids.sort_unstable();
    assert_eq!(near_ids, survivors, "NEAR top-k leaked a tombstone");
    assert!(near.counters.pair_entries > 0, "pair path engaged");
    // Every survivor's pair is adjacent: closeness is exactly 1.0.
    assert!(near.hits.iter().all(|&(_, s)| s == 1.0));

    // After compaction the tombstones are physically reclaimed and the
    // same answers come from rebuilt pair lists.
    engine.merge();
    let hits = engine.search(phrase).unwrap();
    assert_eq!(hits.node_ids(), survivors);
    let near = engine.search_near_top_k("alpha", "beta", 4, true, 100);
    let mut near_ids: Vec<u32> = near.hits.iter().map(|(n, _)| n.0).collect();
    near_ids.sort_unstable();
    assert_eq!(near_ids, survivors);
}

/// Mutating concurrently from several threads: the index stays consistent
/// (every surviving document answers, every deleted one does not).
#[test]
fn concurrent_writers_and_readers_stay_consistent() {
    let engine = LiveFtsl::with_config(LiveConfig {
        background_merge: true,
        flush_threshold: 8,
        merge_fanin: 2,
        ..LiveConfig::default()
    });
    std::thread::scope(|scope| {
        let e = &engine;
        let writer = scope.spawn(move || {
            let mut added = Vec::new();
            for i in 0..60 {
                added.push(e.add(&format!("writer doc{i} alpha")));
                if i % 7 == 0 {
                    e.flush();
                }
                if i % 5 == 0 {
                    if let Some(&n) = added.get(i / 2) {
                        e.delete(n);
                    }
                }
            }
        });
        let reader = scope.spawn(move || {
            for _ in 0..40 {
                let snap = e.snapshot();
                // A snapshot is internally consistent: every live doc it
                // reports resolves, and counts add up.
                let live = snap.live_doc_count();
                let listed = snap.live_documents().count();
                assert_eq!(live, listed);
                let hits = e.search("'alpha'").unwrap();
                for n in &hits.nodes {
                    // Hits come from *some* recent snapshot; they must at
                    // least be ids that were ever assigned.
                    assert!(n.0 < 60);
                }
            }
        });
        writer.join().unwrap();
        reader.join().unwrap();
    });
    engine.merge();
    let snap = engine.snapshot();
    assert_eq!(snap.live_doc_count(), engine.live_index().live_doc_count());
}

/// The serving contract: N reader threads hammering one held snapshot —
/// BOOL sets on both layouts plus streaming top-k with a per-thread
/// [`ExecScratch`] — while a writer churns adds, deletes, flushes, and
/// merges. Every concurrent answer must be bit-identical to the
/// single-threaded reference computed on that snapshot up front: same node
/// ids, same score *bits*. This is exactly what the serve pool relies on
/// (shared `Snapshot`, per-worker scratch, no cross-thread interference).
#[test]
fn concurrent_readers_match_single_threaded_on_held_snapshot() {
    use ftsl_exec::snapshot::ExecScratch;

    let engine = LiveFtsl::with_config(manual_config());
    // Seed with enough structure for every query family, across several
    // sealed segments (flush_threshold 6 auto-seals as we go).
    for i in 0..30 {
        let tokens: Vec<usize> = (0..10).map(|j| (i * 3 + j * 5) % 9).collect();
        engine.add(&render(&tokens));
    }
    engine.flush();
    engine.live_index().maybe_merge();
    let pinned = engine.snapshot();
    let stats = SnapshotStats::compute(&pinned);
    let reg = PredicateRegistry::with_builtins();

    // Single-threaded reference on the pinned snapshot, both layouts.
    let layouts = [IndexLayout::Decoded, IndexLayout::Blocks];
    let mut set_refs: Vec<Vec<Vec<NodeId>>> = Vec::new();
    for layout in layouts {
        let options = ExecOptions {
            layout,
            ..Default::default()
        };
        let exec = SnapshotExecutor::with_options(&pinned, &reg, options);
        set_refs.push(
            SET_QUERIES
                .iter()
                .map(|(q, kind)| exec.run_str(q, *kind).expect("reference run").nodes)
                .collect(),
        );
    }
    let topk_query = ftsl_lang::parse("'alpha' OR 'beta' OR 'eps'", ftsl_lang::Mode::Comp).unwrap();
    let topk_tokens = ["alpha", "beta", "eps"];
    let topk_model = stats.tfidf_model(&topk_tokens, &pinned);
    let topk_ref: Vec<Vec<(NodeId, u64)>> = layouts
        .iter()
        .map(|&layout| {
            let options = ExecOptions {
                layout,
                ..Default::default()
            };
            SnapshotExecutor::with_options(&pinned, &reg, options)
                .run_top_k(
                    &topk_query,
                    ScoredTopK { k: 7 },
                    &stats,
                    &ScoreModel::TfIdf(&topk_model),
                )
                .expect("reference topk")
                .hits
                .iter()
                .map(|(n, s)| (*n, s.to_bits()))
                .collect()
        })
        .collect();

    std::thread::scope(|scope| {
        let e = &engine;
        let writer = scope.spawn(move || {
            // Churn hard: every shape of mutation, repeatedly.
            for round in 0..40u32 {
                e.add(&format!("churn{round} alpha zeta"));
                if round % 3 == 0 {
                    e.delete(NodeId(round % 30));
                }
                if round % 4 == 0 {
                    e.flush();
                }
                if round % 8 == 0 {
                    e.live_index().maybe_merge();
                }
                if round == 20 {
                    e.merge();
                }
            }
        });
        for reader in 0..4usize {
            let (pinned, stats, reg) = (&pinned, &stats, &reg);
            let (set_refs, topk_ref, topk_query, topk_model) =
                (&set_refs, &topk_ref, &topk_query, &topk_model);
            scope.spawn(move || {
                let mut scratch = ExecScratch::new();
                for _round in 0..8 {
                    for (li, &layout) in layouts.iter().enumerate() {
                        let options = ExecOptions {
                            layout,
                            ..Default::default()
                        };
                        let exec = SnapshotExecutor::with_options(pinned, reg, options);
                        for (qi, (q, kind)) in SET_QUERIES.iter().enumerate() {
                            let out = exec.run_str(q, *kind).expect("concurrent run");
                            assert_eq!(
                                out.nodes, set_refs[li][qi],
                                "reader {reader}: {q} on {layout:?} diverged under churn"
                            );
                        }
                        let out = exec
                            .run_top_k_with(
                                topk_query,
                                ScoredTopK { k: 7 },
                                stats,
                                &ScoreModel::TfIdf(topk_model),
                                &mut scratch,
                            )
                            .expect("concurrent topk");
                        let got: Vec<(NodeId, u64)> =
                            out.hits.iter().map(|(n, s)| (*n, s.to_bits())).collect();
                        assert_eq!(
                            got, topk_ref[li],
                            "reader {reader}: topk on {layout:?} diverged under churn"
                        );
                    }
                }
            });
        }
        writer.join().unwrap();
    });
}
