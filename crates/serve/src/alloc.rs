//! A counting global allocator for allocation-budget tests and benches.
//!
//! Install it in a test or bench **binary** (never in a library):
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: ftsl_serve::CountingAlloc = ftsl_serve::CountingAlloc;
//! ```
//!
//! Every thread then counts its own allocations; [`thread_allocs`] reads
//! the calling thread's total, so a delta around a code region is an exact
//! per-thread allocation count with no cross-thread noise. When the
//! allocator is *not* installed the counter never moves and
//! [`thread_allocs`] reports 0 — [`crate::WorkerStats::allocs`] is
//! meaningful only under an instrumented binary.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    // `const` init: reading or bumping the counter must itself never
    // allocate, even on a thread's first allocation.
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Allocations performed by the calling thread since it started, counted
/// only while [`CountingAlloc`] is the global allocator.
pub fn thread_allocs() -> u64 {
    THREAD_ALLOCS.try_with(Cell::get).unwrap_or(0)
}

/// [`System`] with a per-thread allocation counter. Frees are not counted:
/// the serving invariants bound how often the allocator is *entered* on
/// the hot path, and a region that allocates nothing frees nothing.
pub struct CountingAlloc;

impl CountingAlloc {
    #[inline]
    fn bump() {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
    }
}

// SAFETY: delegates verbatim to `System`; the counter is per-thread state
// touched outside the allocation itself.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        Self::bump();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        Self::bump();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        Self::bump();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}
