//! The thread-pool executor: N workers, one shared engine, one cache.
//!
//! Life of a request: [`ServePool::submit`] pushes a job on a
//! `Mutex<VecDeque>` queue and returns a [`Ticket`]; a worker wakes under
//! the condvar, checks the [`crate::ResultCache`] against the *current*
//! mutation version, and on a miss pins a snapshot and evaluates with its
//! own long-lived [`ExecScratch`] (top-k heap) plus the thread-local
//! cursor-scratch pool `ftsl-index` maintains per worker thread. The
//! answer travels back through the ticket's channel as an `Arc` — the
//! same `Arc` the cache keeps, so concurrent requesters of a hot query
//! share one materialized result.
//!
//! Workers never hold the queue lock while evaluating, and the writer
//! side of the engine is untouched: snapshots isolate readers, the
//! version key isolates the cache.

use crate::cache::ResultCache;
use crate::{thread_allocs, Answer, CacheStats};
use ftsl_core::{ExecScratch, FtslError, LiveFtsl, RankModel};
use ftsl_index::scratch_pool_stats;
use ftsl_obs::{Histogram, HistogramSnapshot, MetricValue, Registry, SlowEntry, SlowLog};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// What to run. The query text is COMP syntax (subsumes BOOL and DIST),
/// exactly as [`LiveFtsl::search`] / [`LiveFtsl::search_top_k`] take it.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryRequest {
    /// Engine-dispatched (unranked) evaluation.
    Search {
        /// COMP-syntax query text.
        query: String,
    },
    /// Streaming scored top-k.
    TopK {
        /// COMP-syntax query text.
        query: String,
        /// Scoring model.
        model: RankModel,
        /// How many hits to keep.
        k: usize,
    },
    /// Proximity-ranked NEAR over the word-pair auxiliary index
    /// ([`LiveFtsl::search_near_top_k`]).
    Near {
        /// First token.
        first: String,
        /// Second token.
        second: String,
        /// Largest qualifying gap.
        bound: u32,
        /// Require `first` strictly before `second`.
        ordered: bool,
        /// How many hits to keep.
        k: usize,
    },
}

impl QueryRequest {
    /// An unranked search request.
    pub fn search(query: &str) -> Self {
        QueryRequest::Search {
            query: query.to_string(),
        }
    }

    /// A ranked top-k request.
    pub fn top_k(query: &str, model: RankModel, k: usize) -> Self {
        QueryRequest::TopK {
            query: query.to_string(),
            model,
            k,
        }
    }

    /// A proximity-ranked NEAR request.
    pub fn near(first: &str, second: &str, bound: u32, ordered: bool, k: usize) -> Self {
        QueryRequest::Near {
            first: first.to_string(),
            second: second.to_string(),
            bound,
            ordered,
            k,
        }
    }

    /// The query text (the first token for a NEAR request).
    pub fn query(&self) -> &str {
        match self {
            QueryRequest::Search { query } => query,
            QueryRequest::TopK { query, .. } => query,
            QueryRequest::Near { first, .. } => first,
        }
    }

    /// A one-line human rendering for logs (slow-query entries).
    pub fn describe(&self) -> String {
        match self {
            QueryRequest::Search { query } => query.clone(),
            QueryRequest::TopK { query, model, k } => {
                format!("top-k k={k} model={model:?} {query}")
            }
            QueryRequest::Near {
                first,
                second,
                bound,
                ordered,
                k,
            } => format!("near k={k} bound={bound} ordered={ordered} '{first}' '{second}'"),
        }
    }
}

/// A served answer plus where it came from.
#[derive(Clone, Debug)]
pub struct Served {
    /// The result, shared with the cache and concurrent requesters.
    pub answer: Arc<Answer>,
    /// True when the answer came out of the result cache.
    pub cached: bool,
    /// Mutation version the answer is valid for.
    pub version: u64,
}

/// Pool sizing, cache capacity, and observability knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Worker threads. 0 is promoted to 1.
    pub workers: usize,
    /// Result-cache capacity in entries.
    pub cache_capacity: usize,
    /// Record per-request latency into the worker histograms exported by
    /// [`ServePool::metrics_text`]. Costs one `Instant::now` pair and
    /// three relaxed atomic ops per request; disable to shave the last
    /// nanoseconds off the hot path. The metrics *registry* exists either
    /// way — counters keep counting, only the duration histogram stays
    /// empty when this is off.
    pub metrics: bool,
    /// Wall-time threshold in microseconds above which a request is
    /// captured in the slow-query log. 0 disables capture entirely.
    pub slow_query_us: u64,
    /// Ring-buffer capacity of the slow-query log (clamped to ≥ 1).
    pub slow_log_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            cache_capacity: 1024,
            metrics: true,
            slow_query_us: 10_000,
            slow_log_capacity: 64,
        }
    }
}

/// Per-worker counters, updated by the worker after every request and
/// readable at any time through [`ServePool::stats`].
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkerStats {
    /// Requests this worker completed (hits and misses alike).
    pub served: u64,
    /// Requests answered from the result cache.
    pub cache_hits: u64,
    /// Heap allocations performed by this worker's thread, counted only
    /// when [`crate::CountingAlloc`] is installed in the binary; 0
    /// otherwise.
    pub allocs: u64,
    /// Cursor scratch buffers this worker's thread recycled.
    pub scratch_reused: u64,
    /// Cursor scratch buffers this worker's thread heap-allocated.
    pub scratch_allocated: u64,
    /// Postings this worker resolved from word-pair auxiliary lists
    /// (cache misses only — a cached answer decodes nothing).
    pub pair_entries: u64,
}

/// Everything a worker updates, shared with the pool handle.
#[derive(Default)]
struct WorkerSlot {
    served: AtomicU64,
    cache_hits: AtomicU64,
    allocs: AtomicU64,
    scratch_reused: AtomicU64,
    scratch_allocated: AtomicU64,
    pair_entries: AtomicU64,
    /// Request wall time in µs, recorded when [`ServeConfig::metrics`] is
    /// on. Per-worker so recording never contends; merged on read.
    latency_us: Histogram,
}

impl WorkerSlot {
    fn snapshot(&self) -> WorkerStats {
        WorkerStats {
            served: self.served.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            allocs: self.allocs.load(Ordering::Relaxed),
            scratch_reused: self.scratch_reused.load(Ordering::Relaxed),
            scratch_allocated: self.scratch_allocated.load(Ordering::Relaxed),
            pair_entries: self.pair_entries.load(Ordering::Relaxed),
        }
    }
}

/// Pool-wide counters: one [`WorkerStats`] per worker plus the cache's
/// and the merged request-latency histogram.
///
/// **Ordering caveat:** every counter is maintained with `Relaxed` atomic
/// operations and [`ServePool::stats`] reads them while workers may still
/// be running, so a snapshot is *per-counter* exact (each value is a real
/// value that counter held) but not a cross-counter atomic cut — e.g.
/// `served()` can momentarily exceed `cache.hits + cache.misses` while a
/// request is between its cache lookup and its slot update. Once the pool
/// is quiescent (all submitted tickets have resolved), every identity
/// holds exactly: `served() == cache.hits + cache.misses`,
/// `cache_hits() == cache.hits`, and `latency.count() == served()` when
/// metrics are enabled — the reconciliation tests pin this down.
#[derive(Clone, Debug)]
pub struct PoolStats {
    /// Per-worker counters, index = worker id.
    pub workers: Vec<WorkerStats>,
    /// Result-cache counters.
    pub cache: CacheStats,
    /// Request wall-time histogram merged across workers (empty when
    /// [`ServeConfig::metrics`] is off).
    pub latency: HistogramSnapshot,
}

impl PoolStats {
    /// Total requests served across workers.
    pub fn served(&self) -> u64 {
        self.workers.iter().map(|w| w.served).sum()
    }

    /// Total cache hits across workers.
    pub fn cache_hits(&self) -> u64 {
        self.workers.iter().map(|w| w.cache_hits).sum()
    }

    /// Total postings resolved from word-pair auxiliary lists.
    pub fn pair_entries(&self) -> u64 {
        self.workers.iter().map(|w| w.pair_entries).sum()
    }
}

type Reply = Result<Served, FtslError>;

struct Job {
    req: QueryRequest,
    reply: mpsc::Sender<Reply>,
}

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    work_ready: Condvar,
    shutdown: AtomicBool,
    slots: Vec<Arc<WorkerSlot>>,
    /// Mirror of [`ServeConfig::metrics`].
    metrics: bool,
    slow: Arc<SlowLog>,
}

/// A pending request; [`Ticket::wait`] blocks for the worker's answer.
pub struct Ticket {
    rx: mpsc::Receiver<Reply>,
}

impl Ticket {
    /// Block until the answer arrives.
    pub fn wait(self) -> Reply {
        self.rx
            .recv()
            .unwrap_or_else(|_| Err(FtslError::Internal("serve pool shut down".to_string())))
    }
}

/// One worker's (or a caller's) serving context: the engine, the shared
/// cache, and the reusable evaluation scratch. [`ServeContext::serve`] is
/// the exact code a pool worker runs per request — tests and benches can
/// drive it directly on their own thread to measure the hot path without
/// the queue and channel around it.
pub struct ServeContext {
    engine: Arc<LiveFtsl>,
    cache: Arc<ResultCache>,
    scratch: ExecScratch,
}

impl ServeContext {
    /// A context over `engine` using `cache` for results.
    pub fn new(engine: Arc<LiveFtsl>, cache: Arc<ResultCache>) -> Self {
        ServeContext {
            engine,
            cache,
            scratch: ExecScratch::new(),
        }
    }

    /// Serve one request: cache lookup at the current mutation version,
    /// falling through to snapshot evaluation with reused scratch on a
    /// miss. The hit path allocates nothing. Errors are returned, never
    /// cached.
    pub fn serve(&mut self, req: &QueryRequest) -> Reply {
        let version = self.engine.version();
        if let Some(answer) = self.cache.lookup(req, version) {
            return Ok(Served {
                answer,
                cached: true,
                version,
            });
        }
        let answer =
            Arc::new(match req {
                QueryRequest::Search { query } => Answer::Search(self.engine.search(query)?),
                QueryRequest::TopK { query, model, k } => Answer::TopK(
                    self.engine
                        .search_top_k_with(query, *model, *k, &mut self.scratch)?,
                ),
                QueryRequest::Near {
                    first,
                    second,
                    bound,
                    ordered,
                    k,
                } => Answer::Near(self.engine.search_near_top_k_with(
                    first,
                    second,
                    *bound,
                    *ordered,
                    *k,
                    &mut self.scratch,
                )),
            });
        // Keyed under the version read *before* evaluation: if a write
        // landed in between, the current version moved past `version`, so
        // the entry is stale-from-birth and unreachable (versions only
        // grow) — it is never served, merely evicted early.
        self.cache.insert(req, version, Arc::clone(&answer));
        Ok(Served {
            answer,
            cached: false,
            version,
        })
    }
}

/// The concurrent serving front door over one [`LiveFtsl`].
///
/// Dropping the pool shuts it down: workers drain nothing further, wake,
/// and are joined. In-flight tickets resolve with an error if their job
/// was still queued.
pub struct ServePool {
    shared: Arc<Shared>,
    cache: Arc<ResultCache>,
    registry: Registry,
    handles: Vec<JoinHandle<()>>,
}

impl ServePool {
    /// Spawn `config.workers` workers (at least one) over a shared engine.
    pub fn new(engine: Arc<LiveFtsl>, config: ServeConfig) -> Self {
        let workers = config.workers.max(1);
        let cache = Arc::new(ResultCache::new(config.cache_capacity));
        let slots: Vec<Arc<WorkerSlot>> = (0..workers).map(|_| Arc::default()).collect();
        let slow = Arc::new(SlowLog::new(config.slow_query_us, config.slow_log_capacity));
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            slots,
            metrics: config.metrics,
            slow: Arc::clone(&slow),
        });
        let registry = build_registry(&shared, &cache, &slow, &engine);
        let handles = (0..workers)
            .map(|id| {
                let shared = Arc::clone(&shared);
                let slot = Arc::clone(&shared.slots[id]);
                let mut ctx = ServeContext::new(Arc::clone(&engine), Arc::clone(&cache));
                std::thread::Builder::new()
                    .name(format!("ftsl-serve-{id}"))
                    .spawn(move || worker_loop(&shared, &slot, &mut ctx))
                    .expect("spawn serve worker")
            })
            .collect();
        ServePool {
            shared,
            cache,
            registry,
            handles,
        }
    }

    /// Enqueue a request; the returned [`Ticket`] resolves when a worker
    /// finishes it.
    pub fn submit(&self, req: QueryRequest) -> Ticket {
        let (tx, rx) = mpsc::channel();
        {
            let mut queue = self.shared.queue.lock().expect("serve queue poisoned");
            queue.push_back(Job { req, reply: tx });
        }
        self.shared.work_ready.notify_one();
        Ticket { rx }
    }

    /// Submit and wait — the closed-loop client call.
    pub fn execute(&self, req: QueryRequest) -> Reply {
        self.submit(req).wait()
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// The shared result cache (for stats or pre-warming).
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// Per-worker and cache counters plus the merged latency histogram.
    ///
    /// One snapshot per call; see the [`PoolStats`] ordering caveat for
    /// what "snapshot" means while workers are still running.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self.shared.slots.iter().map(|s| s.snapshot()).collect(),
            cache: self.cache.stats(),
            latency: merged_latency(&self.shared.slots),
        }
    }

    /// The metrics registry. Collectors read the same atomics
    /// [`ServePool::stats`] reads, so exports reconcile exactly with
    /// [`PoolStats`] / [`CacheStats`] once the pool is quiescent.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// All metrics in the Prometheus text exposition format.
    pub fn metrics_text(&self) -> String {
        self.registry.prometheus_text()
    }

    /// All metrics as a JSON object keyed by metric name.
    pub fn metrics_json(&self) -> String {
        self.registry.json()
    }

    /// The slow-query log (ring of requests over
    /// [`ServeConfig::slow_query_us`]; threshold adjustable at runtime).
    pub fn slow_log(&self) -> &SlowLog {
        &self.shared.slow
    }
}

fn merged_latency(slots: &[Arc<WorkerSlot>]) -> HistogramSnapshot {
    slots.iter().fold(HistogramSnapshot::empty(), |acc, s| {
        acc.merge(&s.latency_us.snapshot())
    })
}

/// Wire up every collector: serve counters, request latency, result
/// cache, slow log, engine liveness, and index residency (including the
/// word-pair auxiliary lists and the block-decode cache).
fn build_registry(
    shared: &Arc<Shared>,
    cache: &Arc<ResultCache>,
    slow: &Arc<SlowLog>,
    engine: &Arc<LiveFtsl>,
) -> Registry {
    let registry = Registry::new();
    let sum_slot = |shared: &Arc<Shared>, f: fn(&WorkerSlot) -> &AtomicU64| {
        let shared = Arc::clone(shared);
        move || {
            MetricValue::Counter(
                shared
                    .slots
                    .iter()
                    .map(|s| f(s).load(Ordering::Relaxed))
                    .sum(),
            )
        }
    };
    registry.register(
        "ftsl_serve_requests_total",
        "Requests completed across all workers",
        sum_slot(shared, |s| &s.served),
    );
    registry.register(
        "ftsl_serve_cache_hits_total",
        "Requests answered from the result cache",
        sum_slot(shared, |s| &s.cache_hits),
    );
    registry.register(
        "ftsl_serve_pair_entries_total",
        "Postings resolved from word-pair auxiliary lists (cache misses only)",
        sum_slot(shared, |s| &s.pair_entries),
    );
    registry.register(
        "ftsl_serve_worker_allocs_total",
        "Heap allocations on worker threads (0 unless CountingAlloc is installed)",
        sum_slot(shared, |s| &s.allocs),
    );
    let sh = Arc::clone(shared);
    registry.register(
        "ftsl_serve_scratch_reused",
        "Cursor scratch buffers recycled across worker threads",
        move || {
            MetricValue::Gauge(
                sh.slots
                    .iter()
                    .map(|s| s.scratch_reused.load(Ordering::Relaxed))
                    .sum(),
            )
        },
    );
    let sh = Arc::clone(shared);
    registry.register(
        "ftsl_serve_scratch_allocated",
        "Cursor scratch buffers heap-allocated across worker threads",
        move || {
            MetricValue::Gauge(
                sh.slots
                    .iter()
                    .map(|s| s.scratch_allocated.load(Ordering::Relaxed))
                    .sum(),
            )
        },
    );
    let sh = Arc::clone(shared);
    registry.register(
        "ftsl_request_duration_us",
        "Request wall time in microseconds (empty when ServeConfig::metrics is off)",
        move || MetricValue::Histogram(merged_latency(&sh.slots)),
    );
    let ch = Arc::clone(cache);
    registry.register(
        "ftsl_result_cache_hits_total",
        "Result-cache lookups that found a current-version entry",
        move || MetricValue::Counter(ch.stats().hits),
    );
    let ch = Arc::clone(cache);
    registry.register(
        "ftsl_result_cache_misses_total",
        "Result-cache lookups that fell through to evaluation",
        move || MetricValue::Counter(ch.stats().misses),
    );
    let ch = Arc::clone(cache);
    registry.register(
        "ftsl_result_cache_insertions_total",
        "Answers inserted into the result cache",
        move || MetricValue::Counter(ch.stats().insertions),
    );
    let ch = Arc::clone(cache);
    registry.register(
        "ftsl_result_cache_evictions_total",
        "Entries evicted from the result cache",
        move || MetricValue::Counter(ch.stats().evictions),
    );
    let ch = Arc::clone(cache);
    registry.register(
        "ftsl_result_cache_entries",
        "Entries currently resident in the result cache",
        move || MetricValue::Gauge(ch.stats().entries as u64),
    );
    let ch = Arc::clone(cache);
    registry.register(
        "ftsl_result_cache_capacity",
        "Result-cache capacity in entries",
        move || MetricValue::Gauge(ch.stats().capacity as u64),
    );
    let sl = Arc::clone(slow);
    registry.register(
        "ftsl_slow_queries_total",
        "Requests captured by the slow-query log (lifetime, including evicted)",
        move || MetricValue::Counter(sl.total()),
    );
    let sl = Arc::clone(slow);
    registry.register(
        "ftsl_slow_query_threshold_us",
        "Slow-query capture threshold in microseconds (0 = disabled)",
        move || MetricValue::Gauge(sl.threshold_us()),
    );
    let en = Arc::clone(engine);
    registry.register(
        "ftsl_engine_version",
        "Mutation version of the live engine (result-cache key component)",
        move || MetricValue::Gauge(en.version()),
    );
    let en = Arc::clone(engine);
    registry.register(
        "ftsl_engine_segments",
        "Sealed segments currently live",
        move || MetricValue::Gauge(en.live_index().segment_count() as u64),
    );
    let en = Arc::clone(engine);
    registry.register(
        "ftsl_engine_live_docs",
        "Documents visible to readers (added minus deleted)",
        move || MetricValue::Gauge(en.live_index().live_doc_count() as u64),
    );
    let en = Arc::clone(engine);
    registry.register(
        "ftsl_engine_tombstones",
        "Deletions awaiting merge reclamation",
        move || MetricValue::Gauge(en.live_index().tombstone_count() as u64),
    );
    let en = Arc::clone(engine);
    registry.register(
        "ftsl_engine_merges_total",
        "Background segment merges committed",
        move || MetricValue::Counter(en.live_index().merges_completed()),
    );
    let en = Arc::clone(engine);
    registry.register(
        "ftsl_index_resident_bytes",
        "Resident heap bytes across live segments",
        move || {
            MetricValue::Gauge(
                en.segment_reports()
                    .iter()
                    .map(|r| r.resident_bytes as u64)
                    .sum(),
            )
        },
    );
    let en = Arc::clone(engine);
    registry.register(
        "ftsl_index_pair_bytes",
        "Bytes held by word-pair auxiliary lists across live segments",
        move || {
            MetricValue::Gauge(
                en.segment_reports()
                    .iter()
                    .map(|r| r.pair_bytes as u64)
                    .sum(),
            )
        },
    );
    let en = Arc::clone(engine);
    registry.register(
        "ftsl_decode_cache_hits_total",
        "Block-decode cache hits across live segments",
        move || {
            let snap = en.snapshot();
            MetricValue::Counter(
                snap.segments()
                    .iter()
                    .map(|s| s.data().index().decode_cache_stats().hits)
                    .sum(),
            )
        },
    );
    let en = Arc::clone(engine);
    registry.register(
        "ftsl_decode_cache_misses_total",
        "Block-decode cache misses across live segments",
        move || {
            let snap = en.snapshot();
            MetricValue::Counter(
                snap.segments()
                    .iter()
                    .map(|s| s.data().index().decode_cache_stats().misses)
                    .sum(),
            )
        },
    );
    let en = Arc::clone(engine);
    registry.register(
        "ftsl_decode_cache_resident_bytes",
        "Decoded posting-list bytes retained by the block-decode caches",
        move || {
            let snap = en.snapshot();
            MetricValue::Gauge(
                snap.segments()
                    .iter()
                    .map(|s| s.data().index().decode_cache_stats().resident_bytes as u64)
                    .sum(),
            )
        },
    );
    registry
}

impl Drop for ServePool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.work_ready.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, slot: &WorkerSlot, ctx: &mut ServeContext) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("serve queue poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared.work_ready.wait(queue).expect("serve queue poisoned");
            }
        };
        // Timing is taken only when someone will consume it; with metrics
        // and the slow log both off, the hot path clocks nothing.
        let timed = shared.metrics || shared.slow.threshold_us() != 0;
        let start = timed.then(Instant::now);
        let allocs_before = thread_allocs();
        let result = ctx.serve(&job.req);
        slot.allocs
            .fetch_add(thread_allocs() - allocs_before, Ordering::Relaxed);
        slot.served.fetch_add(1, Ordering::Relaxed);
        if let Ok(served) = &result {
            if served.cached {
                slot.cache_hits.fetch_add(1, Ordering::Relaxed);
            } else if let Some(c) = served.answer.counters() {
                slot.pair_entries
                    .fetch_add(c.pair_entries, Ordering::Relaxed);
            }
        }
        if let Some(start) = start {
            let micros = start.elapsed().as_micros() as u64;
            if shared.metrics {
                slot.latency_us.record(micros);
            }
            if shared.slow.should_log(micros) {
                shared.slow.record(slow_entry(&job.req, micros, &result));
            }
        }
        let pool = scratch_pool_stats();
        slot.scratch_reused.store(pool.reused, Ordering::Relaxed);
        slot.scratch_allocated
            .store(pool.allocated, Ordering::Relaxed);
        // The requester may have given up (dropped ticket) — fine.
        let _ = job.reply.send(result);
    }
}

/// Build the slow-log record for a request that crossed the threshold.
/// Runs only on the (rare, already-slow) capture path, so the `String`
/// allocations here never touch steady-state serving.
fn slow_entry(req: &QueryRequest, micros: u64, result: &Reply) -> SlowEntry {
    let (cached, summary, trace) = match result {
        Ok(served) => {
            let hits = match served.answer.as_ref() {
                Answer::Search(r) => r.len(),
                Answer::TopK(r) => r.hits.len(),
                Answer::Near(r) => r.hits.len(),
            };
            let summary = match served.answer.counters() {
                Some(c) => format!(
                    "hits={} entries={} positions={} pair_entries={} blocks_skipped={} segments_skipped={}",
                    hits, c.entries, c.positions, c.pair_entries, c.blocks_skipped, c.segments_skipped
                ),
                None => format!("hits={hits} (exhaustive ranking; no cursor counters)"),
            };
            (served.cached, summary, served.answer.trace().cloned())
        }
        Err(e) => (false, format!("error: {e}"), None),
    };
    SlowEntry {
        seq: 0, // assigned by SlowLog::record
        query: req.describe(),
        micros,
        cached,
        summary,
        trace,
    }
}

/// Entry point sugar: `engine.serve_pool(config)` on an
/// `Arc<LiveFtsl>`. (The pool must share ownership of the engine with its
/// workers, hence the `Arc` receiver; `ftsl-core` cannot define this
/// inherently without depending on the serving layer.)
pub trait ServePoolExt {
    /// Spawn a [`ServePool`] over this engine.
    fn serve_pool(self: &Arc<Self>, config: ServeConfig) -> ServePool;
}

impl ServePoolExt for LiveFtsl {
    fn serve_pool(self: &Arc<Self>, config: ServeConfig) -> ServePool {
        ServePool::new(Arc::clone(self), config)
    }
}
