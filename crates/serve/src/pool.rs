//! The thread-pool executor: N workers, one shared engine, one cache.
//!
//! Life of a request: [`ServePool::submit`] pushes a job on a
//! `Mutex<VecDeque>` queue and returns a [`Ticket`]; a worker wakes under
//! the condvar, checks the [`crate::ResultCache`] against the *current*
//! mutation version, and on a miss pins a snapshot and evaluates with its
//! own long-lived [`ExecScratch`] (top-k heap) plus the thread-local
//! cursor-scratch pool `ftsl-index` maintains per worker thread. The
//! answer travels back through the ticket's channel as an `Arc` — the
//! same `Arc` the cache keeps, so concurrent requesters of a hot query
//! share one materialized result.
//!
//! Workers never hold the queue lock while evaluating, and the writer
//! side of the engine is untouched: snapshots isolate readers, the
//! version key isolates the cache.

use crate::cache::ResultCache;
use crate::{thread_allocs, Answer, CacheStats};
use ftsl_core::{ExecScratch, FtslError, LiveFtsl, RankModel};
use ftsl_index::scratch_pool_stats;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// What to run. The query text is COMP syntax (subsumes BOOL and DIST),
/// exactly as [`LiveFtsl::search`] / [`LiveFtsl::search_top_k`] take it.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryRequest {
    /// Engine-dispatched (unranked) evaluation.
    Search {
        /// COMP-syntax query text.
        query: String,
    },
    /// Streaming scored top-k.
    TopK {
        /// COMP-syntax query text.
        query: String,
        /// Scoring model.
        model: RankModel,
        /// How many hits to keep.
        k: usize,
    },
    /// Proximity-ranked NEAR over the word-pair auxiliary index
    /// ([`LiveFtsl::search_near_top_k`]).
    Near {
        /// First token.
        first: String,
        /// Second token.
        second: String,
        /// Largest qualifying gap.
        bound: u32,
        /// Require `first` strictly before `second`.
        ordered: bool,
        /// How many hits to keep.
        k: usize,
    },
}

impl QueryRequest {
    /// An unranked search request.
    pub fn search(query: &str) -> Self {
        QueryRequest::Search {
            query: query.to_string(),
        }
    }

    /// A ranked top-k request.
    pub fn top_k(query: &str, model: RankModel, k: usize) -> Self {
        QueryRequest::TopK {
            query: query.to_string(),
            model,
            k,
        }
    }

    /// A proximity-ranked NEAR request.
    pub fn near(first: &str, second: &str, bound: u32, ordered: bool, k: usize) -> Self {
        QueryRequest::Near {
            first: first.to_string(),
            second: second.to_string(),
            bound,
            ordered,
            k,
        }
    }

    /// The query text (the first token for a NEAR request).
    pub fn query(&self) -> &str {
        match self {
            QueryRequest::Search { query } => query,
            QueryRequest::TopK { query, .. } => query,
            QueryRequest::Near { first, .. } => first,
        }
    }
}

/// A served answer plus where it came from.
#[derive(Clone, Debug)]
pub struct Served {
    /// The result, shared with the cache and concurrent requesters.
    pub answer: Arc<Answer>,
    /// True when the answer came out of the result cache.
    pub cached: bool,
    /// Mutation version the answer is valid for.
    pub version: u64,
}

/// Pool sizing and cache capacity.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Worker threads. 0 is promoted to 1.
    pub workers: usize,
    /// Result-cache capacity in entries.
    pub cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            cache_capacity: 1024,
        }
    }
}

/// Per-worker counters, updated by the worker after every request and
/// readable at any time through [`ServePool::stats`].
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkerStats {
    /// Requests this worker completed (hits and misses alike).
    pub served: u64,
    /// Requests answered from the result cache.
    pub cache_hits: u64,
    /// Heap allocations performed by this worker's thread, counted only
    /// when [`crate::CountingAlloc`] is installed in the binary; 0
    /// otherwise.
    pub allocs: u64,
    /// Cursor scratch buffers this worker's thread recycled.
    pub scratch_reused: u64,
    /// Cursor scratch buffers this worker's thread heap-allocated.
    pub scratch_allocated: u64,
    /// Postings this worker resolved from word-pair auxiliary lists
    /// (cache misses only — a cached answer decodes nothing).
    pub pair_entries: u64,
}

/// Everything a worker updates, shared with the pool handle.
#[derive(Default)]
struct WorkerSlot {
    served: AtomicU64,
    cache_hits: AtomicU64,
    allocs: AtomicU64,
    scratch_reused: AtomicU64,
    scratch_allocated: AtomicU64,
    pair_entries: AtomicU64,
}

impl WorkerSlot {
    fn snapshot(&self) -> WorkerStats {
        WorkerStats {
            served: self.served.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            allocs: self.allocs.load(Ordering::Relaxed),
            scratch_reused: self.scratch_reused.load(Ordering::Relaxed),
            scratch_allocated: self.scratch_allocated.load(Ordering::Relaxed),
            pair_entries: self.pair_entries.load(Ordering::Relaxed),
        }
    }
}

/// Pool-wide counters: one [`WorkerStats`] per worker plus the cache's.
#[derive(Clone, Debug)]
pub struct PoolStats {
    /// Per-worker counters, index = worker id.
    pub workers: Vec<WorkerStats>,
    /// Result-cache counters.
    pub cache: CacheStats,
}

impl PoolStats {
    /// Total requests served across workers.
    pub fn served(&self) -> u64 {
        self.workers.iter().map(|w| w.served).sum()
    }

    /// Total cache hits across workers.
    pub fn cache_hits(&self) -> u64 {
        self.workers.iter().map(|w| w.cache_hits).sum()
    }

    /// Total postings resolved from word-pair auxiliary lists.
    pub fn pair_entries(&self) -> u64 {
        self.workers.iter().map(|w| w.pair_entries).sum()
    }
}

type Reply = Result<Served, FtslError>;

struct Job {
    req: QueryRequest,
    reply: mpsc::Sender<Reply>,
}

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    work_ready: Condvar,
    shutdown: AtomicBool,
    slots: Vec<Arc<WorkerSlot>>,
}

/// A pending request; [`Ticket::wait`] blocks for the worker's answer.
pub struct Ticket {
    rx: mpsc::Receiver<Reply>,
}

impl Ticket {
    /// Block until the answer arrives.
    pub fn wait(self) -> Reply {
        self.rx
            .recv()
            .unwrap_or_else(|_| Err(FtslError::Internal("serve pool shut down".to_string())))
    }
}

/// One worker's (or a caller's) serving context: the engine, the shared
/// cache, and the reusable evaluation scratch. [`ServeContext::serve`] is
/// the exact code a pool worker runs per request — tests and benches can
/// drive it directly on their own thread to measure the hot path without
/// the queue and channel around it.
pub struct ServeContext {
    engine: Arc<LiveFtsl>,
    cache: Arc<ResultCache>,
    scratch: ExecScratch,
}

impl ServeContext {
    /// A context over `engine` using `cache` for results.
    pub fn new(engine: Arc<LiveFtsl>, cache: Arc<ResultCache>) -> Self {
        ServeContext {
            engine,
            cache,
            scratch: ExecScratch::new(),
        }
    }

    /// Serve one request: cache lookup at the current mutation version,
    /// falling through to snapshot evaluation with reused scratch on a
    /// miss. The hit path allocates nothing. Errors are returned, never
    /// cached.
    pub fn serve(&mut self, req: &QueryRequest) -> Reply {
        let version = self.engine.version();
        if let Some(answer) = self.cache.lookup(req, version) {
            return Ok(Served {
                answer,
                cached: true,
                version,
            });
        }
        let answer =
            Arc::new(match req {
                QueryRequest::Search { query } => Answer::Search(self.engine.search(query)?),
                QueryRequest::TopK { query, model, k } => Answer::TopK(
                    self.engine
                        .search_top_k_with(query, *model, *k, &mut self.scratch)?,
                ),
                QueryRequest::Near {
                    first,
                    second,
                    bound,
                    ordered,
                    k,
                } => Answer::Near(self.engine.search_near_top_k_with(
                    first,
                    second,
                    *bound,
                    *ordered,
                    *k,
                    &mut self.scratch,
                )),
            });
        // Keyed under the version read *before* evaluation: if a write
        // landed in between, the current version moved past `version`, so
        // the entry is stale-from-birth and unreachable (versions only
        // grow) — it is never served, merely evicted early.
        self.cache.insert(req, version, Arc::clone(&answer));
        Ok(Served {
            answer,
            cached: false,
            version,
        })
    }
}

/// The concurrent serving front door over one [`LiveFtsl`].
///
/// Dropping the pool shuts it down: workers drain nothing further, wake,
/// and are joined. In-flight tickets resolve with an error if their job
/// was still queued.
pub struct ServePool {
    shared: Arc<Shared>,
    cache: Arc<ResultCache>,
    handles: Vec<JoinHandle<()>>,
}

impl ServePool {
    /// Spawn `config.workers` workers (at least one) over a shared engine.
    pub fn new(engine: Arc<LiveFtsl>, config: ServeConfig) -> Self {
        let workers = config.workers.max(1);
        let cache = Arc::new(ResultCache::new(config.cache_capacity));
        let slots: Vec<Arc<WorkerSlot>> = (0..workers).map(|_| Arc::default()).collect();
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            slots,
        });
        let handles = (0..workers)
            .map(|id| {
                let shared = Arc::clone(&shared);
                let slot = Arc::clone(&shared.slots[id]);
                let mut ctx = ServeContext::new(Arc::clone(&engine), Arc::clone(&cache));
                std::thread::Builder::new()
                    .name(format!("ftsl-serve-{id}"))
                    .spawn(move || worker_loop(&shared, &slot, &mut ctx))
                    .expect("spawn serve worker")
            })
            .collect();
        ServePool {
            shared,
            cache,
            handles,
        }
    }

    /// Enqueue a request; the returned [`Ticket`] resolves when a worker
    /// finishes it.
    pub fn submit(&self, req: QueryRequest) -> Ticket {
        let (tx, rx) = mpsc::channel();
        {
            let mut queue = self.shared.queue.lock().expect("serve queue poisoned");
            queue.push_back(Job { req, reply: tx });
        }
        self.shared.work_ready.notify_one();
        Ticket { rx }
    }

    /// Submit and wait — the closed-loop client call.
    pub fn execute(&self, req: QueryRequest) -> Reply {
        self.submit(req).wait()
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// The shared result cache (for stats or pre-warming).
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// Per-worker and cache counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self.shared.slots.iter().map(|s| s.snapshot()).collect(),
            cache: self.cache.stats(),
        }
    }
}

impl Drop for ServePool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.work_ready.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, slot: &WorkerSlot, ctx: &mut ServeContext) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("serve queue poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared.work_ready.wait(queue).expect("serve queue poisoned");
            }
        };
        let allocs_before = thread_allocs();
        let result = ctx.serve(&job.req);
        slot.allocs
            .fetch_add(thread_allocs() - allocs_before, Ordering::Relaxed);
        slot.served.fetch_add(1, Ordering::Relaxed);
        if let Ok(served) = &result {
            if served.cached {
                slot.cache_hits.fetch_add(1, Ordering::Relaxed);
            } else if let Some(c) = served.answer.counters() {
                slot.pair_entries
                    .fetch_add(c.pair_entries, Ordering::Relaxed);
            }
        }
        let pool = scratch_pool_stats();
        slot.scratch_reused.store(pool.reused, Ordering::Relaxed);
        slot.scratch_allocated
            .store(pool.allocated, Ordering::Relaxed);
        // The requester may have given up (dropped ticket) — fine.
        let _ = job.reply.send(result);
    }
}

/// Entry point sugar: `engine.serve_pool(config)` on an
/// `Arc<LiveFtsl>`. (The pool must share ownership of the engine with its
/// workers, hence the `Arc` receiver; `ftsl-core` cannot define this
/// inherently without depending on the serving layer.)
pub trait ServePoolExt {
    /// Spawn a [`ServePool`] over this engine.
    fn serve_pool(self: &Arc<Self>, config: ServeConfig) -> ServePool;
}

impl ServePoolExt for LiveFtsl {
    fn serve_pool(self: &Arc<Self>, config: ServeConfig) -> ServePool {
        ServePool::new(Arc::clone(self), config)
    }
}
