//! The query-result cache: LRU over `(normalized query, snapshot version)`.
//!
//! Invalidation is **by version, never by scan**: the snapshot version is
//! part of every key, so a write bumping the live index's mutation counter
//! makes all older entries unreachable without touching them. Stale
//! entries are reclaimed lazily — eviction prefers them over live LRU
//! victims — so a write costs the cache nothing at all.
//!
//! The lookup path is allocation-free: the key is hashed straight off the
//! request (`SipHash` over kind/model/k, the trimmed query bytes, and the
//! version), candidates are found by a linear probe over a flat entry
//! array, and a hit hands back an `Arc` clone. Linear probing over a
//! bounded array beats a `HashMap` here precisely because the array never
//! rehashes or reallocates after construction — capacity is reserved once
//! in [`ResultCache::new`].

use crate::pool::QueryRequest;
use crate::Answer;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One cached result.
struct Entry {
    /// Full key hash — the probe filter; collisions fall through to the
    /// exact comparison below.
    hash: u64,
    /// Snapshot version the answer was computed for.
    version: u64,
    /// The normalized (trimmed) query text plus the request shape.
    query: String,
    /// Second token of a NEAR key; empty for single-text requests.
    query2: String,
    kind: KeyKind,
    /// The shared answer.
    value: Arc<Answer>,
    /// LRU clock stamp of the last hit (or the insertion).
    stamp: u64,
}

/// The non-text part of a cache key: what kind of evaluation, under which
/// model, at what k. Two requests with the same text but different shapes
/// must never collide.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum KeyKind {
    Search,
    TopK { model_tag: u8, k: usize },
    Near { bound: u32, ordered: bool, k: usize },
}

fn key_of(req: &QueryRequest) -> (KeyKind, &str, &str) {
    match req {
        QueryRequest::Search { query } => (KeyKind::Search, query.trim(), ""),
        QueryRequest::TopK { query, model, k } => (
            KeyKind::TopK {
                model_tag: *model as u8,
                k: *k,
            },
            query.trim(),
            "",
        ),
        QueryRequest::Near {
            first,
            second,
            bound,
            ordered,
            k,
        } => (
            KeyKind::Near {
                bound: *bound,
                ordered: *ordered,
                k: *k,
            },
            first.trim(),
            second.trim(),
        ),
    }
}

fn hash_key(kind: KeyKind, query: &str, query2: &str, version: u64) -> u64 {
    let mut h = DefaultHasher::new();
    kind.hash(&mut h);
    query.hash(&mut h);
    query2.hash(&mut h);
    version.hash(&mut h);
    h.finish()
}

/// Point-in-time cache counters. `hits + misses` equals the number of
/// lookups exactly — the counters are bumped once per lookup, atomically,
/// so they stay exact under concurrent workers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to evaluation.
    pub misses: u64,
    /// Entries written (first-time inserts and overwrites).
    pub insertions: u64,
    /// Entries displaced to make room.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum resident entries.
    pub capacity: usize,
}

impl CacheStats {
    /// Hit fraction of all lookups so far (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A bounded, version-keyed LRU result cache shared by all pool workers.
pub struct ResultCache {
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

struct Inner {
    entries: Vec<Entry>,
    capacity: usize,
    clock: u64,
}

impl ResultCache {
    /// An empty cache holding at most `capacity` results (min 1); the
    /// entry array is reserved up front so steady-state operation never
    /// grows it.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        ResultCache {
            inner: Mutex::new(Inner {
                entries: Vec::with_capacity(capacity),
                capacity,
                clock: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Look up `req` at snapshot `version`. A hit refreshes the entry's
    /// LRU stamp and returns a shared handle; allocation-free either way.
    pub fn lookup(&self, req: &QueryRequest, version: u64) -> Option<Arc<Answer>> {
        let (kind, query, query2) = key_of(req);
        let hash = hash_key(kind, query, query2, version);
        let mut inner = self.inner.lock().expect("result cache poisoned");
        let inner = &mut *inner;
        for e in inner.entries.iter_mut() {
            if e.hash == hash
                && e.version == version
                && e.kind == kind
                && e.query == query
                && e.query2 == query2
            {
                inner.clock += 1;
                e.stamp = inner.clock;
                let value = Arc::clone(&e.value);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(value);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Insert (or overwrite) the answer for `req` at snapshot `version`.
    /// When full, eviction displaces a stale-version entry first — those
    /// are unreachable garbage — and only then the least-recently-used
    /// live entry.
    pub fn insert(&self, req: &QueryRequest, version: u64, value: Arc<Answer>) {
        let (kind, query, query2) = key_of(req);
        let hash = hash_key(kind, query, query2, version);
        let mut inner = self.inner.lock().expect("result cache poisoned");
        let inner = &mut *inner;
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(e) = inner.entries.iter_mut().find(|e| {
            e.hash == hash
                && e.version == version
                && e.kind == kind
                && e.query == query
                && e.query2 == query2
        }) {
            e.value = value;
            e.stamp = clock;
            self.insertions.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let entry = Entry {
            hash,
            version,
            query: query.to_string(),
            query2: query2.to_string(),
            kind,
            value,
            stamp: clock,
        };
        if inner.entries.len() < inner.capacity {
            inner.entries.push(entry);
        } else {
            // Victim: any stale-version entry beats every current-version
            // one; within a class, oldest stamp loses.
            let victim = inner
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| (e.version == version, e.stamp))
                .map(|(i, _)| i)
                .expect("capacity >= 1");
            inner.entries[victim] = entry;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Exact counters plus occupancy.
    pub fn stats(&self) -> CacheStats {
        let entries = self.inner.lock().expect("result cache poisoned");
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: entries.entries.len(),
            capacity: entries.capacity,
        }
    }
}
