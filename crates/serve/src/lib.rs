//! The serving front door: many queries in parallel over one live engine.
//!
//! Everything below is std-only plumbing around the read path the rest of
//! the workspace already proved correct: a [`ServePool`] owns N worker
//! threads, each holding its own reusable evaluation state
//! ([`ftsl_exec::ExecScratch`] plus the thread-local cursor-scratch pool
//! inside `ftsl-index`), all executing against point-in-time
//! [`ftsl_index::Snapshot`]s of a shared [`ftsl_core::LiveFtsl`]. Writers
//! keep writing; readers never block them and never see a torn view.
//!
//! Results flow through a [`ResultCache`] keyed on `(normalized query,
//! snapshot version)`. The version is the live index's mutation counter,
//! so invalidation is free: a write bumps the version, and every entry
//! cached under the old version becomes unreachable by construction — no
//! scan, no epoch bookkeeping. The cache-hit path performs **zero heap
//! allocations** (hash, linear probe, `Arc` clone), and the miss path's
//! cursor and top-k state is recycled per worker, which is what makes
//! steady-state serving allocation-free on the hot paths — the
//! [`CountingAlloc`] test allocator pins that down.
//!
//! Serving adds **no index format change**: this crate never touches
//! bytes, only snapshots.
//!
//! ```
//! use ftsl_core::LiveFtsl;
//! use ftsl_serve::{QueryRequest, ServeConfig, ServePoolExt};
//! use std::sync::Arc;
//!
//! let engine = Arc::new(LiveFtsl::new());
//! engine.add("usability of a software system");
//! let pool = engine.serve_pool(ServeConfig {
//!     workers: 2,
//!     ..ServeConfig::default()
//! });
//! let served = pool
//!     .execute(QueryRequest::search("'software'"))
//!     .unwrap();
//! assert_eq!(served.answer.as_search().unwrap().len(), 1);
//! // The same query at the same version comes out of the cache.
//! let again = pool.execute(QueryRequest::search("'software'")).unwrap();
//! assert!(again.cached);
//! ```

pub mod alloc;
pub mod cache;
pub mod pool;

pub use alloc::{thread_allocs, CountingAlloc};
pub use cache::{CacheStats, ResultCache};
pub use ftsl_obs::{HistogramSnapshot, MetricValue, Registry, SlowEntry, SlowLog};
pub use pool::{
    PoolStats, QueryRequest, ServeConfig, ServeContext, ServePool, ServePoolExt, Served, Ticket,
    WorkerStats,
};

use ftsl_core::{Ranked, ScoredOutput, SearchResults};
use ftsl_index::AccessCounters;

/// A finished query result, shared between the cache and all requesters.
#[derive(Clone, Debug)]
pub enum Answer {
    /// BOOL/PPRED/NPRED/COMP matches (unranked).
    Search(SearchResults),
    /// Ranked top-k hits.
    TopK(Ranked),
    /// Proximity-ranked NEAR hits (word-pair index path).
    Near(ScoredOutput),
}

impl Answer {
    /// The unranked results, if this answer holds them.
    pub fn as_search(&self) -> Option<&SearchResults> {
        match self {
            Answer::Search(r) => Some(r),
            _ => None,
        }
    }

    /// The ranked results, if this answer holds them.
    pub fn as_top_k(&self) -> Option<&Ranked> {
        match self {
            Answer::TopK(r) => Some(r),
            _ => None,
        }
    }

    /// The NEAR results, if this answer holds them.
    pub fn as_near(&self) -> Option<&ScoredOutput> {
        match self {
            Answer::Near(r) => Some(r),
            _ => None,
        }
    }

    /// The evaluation's access counters, when the path reports them
    /// (`None` for exhaustive-ranking answers, which walk no cursors).
    pub fn counters(&self) -> Option<AccessCounters> {
        match self {
            Answer::Search(r) => Some(r.counters),
            Answer::TopK(r) => r.counters,
            Answer::Near(r) => Some(r.counters),
        }
    }

    /// The span tree recorded during evaluation, when the engine ran with
    /// [`ftsl_exec::engine::ExecOptions::trace`] enabled (configure via
    /// [`ftsl_core::LiveFtsl::with_options`]); slow-query log entries for
    /// such engines carry the full profile.
    pub fn trace(&self) -> Option<&ftsl_obs::Trace> {
        match self {
            Answer::Search(r) => r.trace.as_deref(),
            Answer::TopK(r) => r.trace.as_deref(),
            Answer::Near(r) => r.trace.as_deref(),
        }
    }
}
