//! Observability reconciliation: the Prometheus export, `PoolStats`, and
//! `CacheStats` must agree exactly once the pool is quiescent, and the
//! slow-query log must capture exactly the requests over threshold.

use ftsl_core::{LiveConfig, LiveFtsl, RankModel};
use ftsl_exec::engine::ExecOptions;
use ftsl_serve::{MetricValue, QueryRequest, ServeConfig, ServePoolExt};
use std::sync::Arc;

fn engine_with(options: Option<ExecOptions>) -> Arc<LiveFtsl> {
    let mut engine = LiveFtsl::with_config(LiveConfig {
        background_merge: false,
        ..LiveConfig::default()
    });
    if let Some(options) = options {
        engine = engine.with_options(options);
    }
    engine.add("usability of a software system measures how well it works");
    engine.add("an efficient algorithm for software task completion");
    engine.add("software usability testing with efficient tools");
    engine.flush();
    Arc::new(engine)
}

/// Pull one scalar sample out of the Prometheus text export.
fn prom_value(text: &str, name: &str) -> u64 {
    text.lines()
        .find(|l| l.split_whitespace().next() == Some(name) && !l.starts_with('#'))
        .unwrap_or_else(|| panic!("metric {name} missing from export:\n{text}"))
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap()
}

#[test]
fn prometheus_export_reconciles_with_pool_stats_after_concurrent_load() {
    let engine = engine_with(None);
    let pool = engine.serve_pool(ServeConfig {
        workers: 4,
        cache_capacity: 64,
        ..ServeConfig::default()
    });
    let queries = ["'software'", "'efficient'", "'usability'", "'algorithm'"];
    // Concurrent submitters; every ticket is awaited, so after the last
    // wait the pool is quiescent and counters must reconcile exactly.
    let rounds = 25;
    let tickets: Vec<_> = (0..rounds)
        .flat_map(|i| {
            queries
                .iter()
                .map(move |q| {
                    if i % 3 == 0 {
                        QueryRequest::top_k(q, RankModel::TfIdf, 5)
                    } else {
                        QueryRequest::search(q)
                    }
                })
                .collect::<Vec<_>>()
        })
        .map(|req| pool.submit(req))
        .collect();
    let total = tickets.len() as u64;
    for t in tickets {
        t.wait().unwrap();
    }

    let stats = pool.stats();
    assert_eq!(stats.served(), total);
    assert_eq!(stats.cache.hits + stats.cache.misses, total);
    assert_eq!(stats.cache_hits(), stats.cache.hits);
    assert_eq!(
        stats.latency.count(),
        total,
        "metrics on: every request lands in the latency histogram"
    );

    let text = pool.metrics_text();
    assert_eq!(prom_value(&text, "ftsl_serve_requests_total"), total);
    assert_eq!(
        prom_value(&text, "ftsl_serve_cache_hits_total"),
        stats.cache.hits
    );
    assert_eq!(
        prom_value(&text, "ftsl_result_cache_hits_total"),
        stats.cache.hits
    );
    assert_eq!(
        prom_value(&text, "ftsl_result_cache_misses_total"),
        stats.cache.misses
    );
    assert_eq!(
        prom_value(&text, "ftsl_result_cache_insertions_total"),
        stats.cache.insertions
    );
    assert_eq!(
        prom_value(&text, "ftsl_result_cache_entries"),
        stats.cache.entries as u64
    );
    assert_eq!(prom_value(&text, "ftsl_request_duration_us_count"), total);
    assert_eq!(prom_value(&text, "ftsl_engine_version"), engine.version());
    assert_eq!(prom_value(&text, "ftsl_engine_live_docs"), 3);
    assert!(
        prom_value(&text, "ftsl_index_resident_bytes") > 0,
        "segments are resident"
    );
    assert!(
        prom_value(&text, "ftsl_index_pair_bytes") > 0,
        "pair auxiliary lists are built by default"
    );
    // Well-formedness: every sample line's metric has HELP and TYPE.
    for name in [
        "ftsl_serve_requests_total",
        "ftsl_request_duration_us",
        "ftsl_result_cache_hits_total",
        "ftsl_slow_queries_total",
    ] {
        assert!(text.contains(&format!("# HELP {name} ")), "HELP for {name}");
        assert!(text.contains(&format!("# TYPE {name} ")), "TYPE for {name}");
    }
    // The histogram's +Inf bucket equals its _count.
    assert!(text.contains(&format!(
        "ftsl_request_duration_us_bucket{{le=\"+Inf\"}} {total}"
    )));

    // JSON export carries the same totals.
    let json = pool.metrics_json();
    assert!(json.contains(&format!(
        "\"ftsl_serve_requests_total\":{{\"type\":\"counter\",\"value\":{total}}}"
    )));

    // Registry point lookups agree too.
    match pool.registry().get("ftsl_serve_requests_total") {
        Some(MetricValue::Counter(v)) => assert_eq!(v, total),
        other => panic!("unexpected sample: {other:?}"),
    }
}

#[test]
fn metrics_off_leaves_latency_histogram_empty() {
    let engine = engine_with(None);
    let pool = engine.serve_pool(ServeConfig {
        workers: 2,
        cache_capacity: 16,
        metrics: false,
        slow_query_us: 0,
        ..ServeConfig::default()
    });
    for _ in 0..10 {
        pool.execute(QueryRequest::search("'software'")).unwrap();
    }
    let stats = pool.stats();
    assert_eq!(stats.served(), 10, "counters still count");
    assert_eq!(stats.latency.count(), 0, "no timing when metrics are off");
    let text = pool.metrics_text();
    assert_eq!(prom_value(&text, "ftsl_serve_requests_total"), 10);
    assert_eq!(prom_value(&text, "ftsl_request_duration_us_count"), 0);
}

#[test]
fn slow_log_captures_over_threshold_with_summary() {
    let engine = engine_with(None);
    let pool = engine.serve_pool(ServeConfig {
        workers: 2,
        cache_capacity: 16,
        slow_query_us: 1, // everything qualifies
        slow_log_capacity: 8,
        ..ServeConfig::default()
    });
    pool.execute(QueryRequest::search("'software' AND 'usability'"))
        .unwrap();
    pool.execute(QueryRequest::near("software", "usability", 8, false, 5))
        .unwrap();

    let slow = pool.slow_log();
    assert_eq!(slow.total(), 2);
    let entries = slow.entries();
    assert_eq!(entries.len(), 2);
    // Most recent first.
    assert!(
        entries[0].query.starts_with("near "),
        "{}",
        entries[0].query
    );
    assert_eq!(entries[1].query, "'software' AND 'usability'");
    for e in &entries {
        assert!(e.micros >= 1);
        assert!(e.summary.contains("hits="), "summary: {}", e.summary);
    }
    assert_eq!(
        prom_value(&pool.metrics_text(), "ftsl_slow_queries_total"),
        2
    );

    // Runtime threshold adjustment: raise it and nothing new is captured.
    slow.set_threshold_us(u64::MAX);
    pool.execute(QueryRequest::search("'efficient'")).unwrap();
    assert_eq!(slow.total(), 2);
}

#[test]
fn slow_log_carries_full_trace_when_engine_traces() {
    let engine = engine_with(Some(ExecOptions {
        trace: true,
        ..ExecOptions::default()
    }));
    let pool = engine.serve_pool(ServeConfig {
        workers: 1,
        cache_capacity: 16,
        slow_query_us: 1,
        ..ServeConfig::default()
    });
    pool.execute(QueryRequest::search("'software' AND 'usability'"))
        .unwrap();
    let entries = pool.slow_log().entries();
    assert_eq!(entries.len(), 1);
    let trace = entries[0]
        .trace
        .as_ref()
        .expect("traced engine: slow entry carries the span tree");
    assert!(
        trace.find("engine").is_some(),
        "profile has an engine span:\n{}",
        trace.render()
    );
}
