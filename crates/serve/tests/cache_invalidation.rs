//! Result-cache correctness: version-keyed invalidation and exact
//! counters under concurrent access.

use ftsl_core::{LiveConfig, LiveFtsl, RankModel};
use ftsl_serve::{QueryRequest, ResultCache, ServeConfig, ServeContext, ServePoolExt};
use std::sync::Arc;

fn manual_engine() -> Arc<LiveFtsl> {
    let engine = LiveFtsl::with_config(LiveConfig {
        background_merge: false,
        ..LiveConfig::default()
    });
    engine.add("usability of a software system measures how well it works");
    engine.add("an efficient algorithm for task completion");
    engine.flush();
    Arc::new(engine)
}

#[test]
fn stale_version_entry_is_never_served_after_a_bump() {
    let engine = manual_engine();
    let cache = Arc::new(ResultCache::new(64));
    let mut ctx = ServeContext::new(Arc::clone(&engine), Arc::clone(&cache));
    let req = QueryRequest::search("'software'");

    let first = ctx.serve(&req).unwrap();
    assert!(!first.cached);
    let warm = ctx.serve(&req).unwrap();
    assert!(warm.cached, "same version: cache hit");
    assert_eq!(warm.version, first.version);

    // A write bumps the version; a matching doc changes the right answer.
    engine.add("another software document");
    engine.flush();
    let after = ctx.serve(&req).unwrap();
    assert!(
        !after.cached,
        "bumped version: the old entry is unreachable"
    );
    assert_ne!(after.version, first.version);
    assert_eq!(
        after.answer.as_search().unwrap().len(),
        first.answer.as_search().unwrap().len() + 1,
        "the fresh answer sees the new document"
    );

    // The same holds for ranked answers.
    let top = QueryRequest::top_k("'software' OR 'efficient'", RankModel::TfIdf, 3);
    let a = ctx.serve(&top).unwrap();
    assert!(!a.cached);
    assert!(ctx.serve(&top).unwrap().cached);
    engine.delete(ftsl_model::NodeId(1));
    let b = ctx.serve(&top).unwrap();
    assert!(!b.cached, "delete bumps the version too");
    assert_ne!(
        a.answer.as_top_k().unwrap().hits,
        b.answer.as_top_k().unwrap().hits,
    );
}

#[test]
fn distinct_request_shapes_never_collide() {
    let engine = manual_engine();
    let cache = Arc::new(ResultCache::new(64));
    let mut ctx = ServeContext::new(Arc::clone(&engine), Arc::clone(&cache));
    // Same text, four different shapes: all four must evaluate (miss).
    let reqs = [
        QueryRequest::search("'software'"),
        QueryRequest::top_k("'software'", RankModel::TfIdf, 10),
        QueryRequest::top_k("'software'", RankModel::TfIdf, 5),
        QueryRequest::top_k("'software'", RankModel::Pra, 10),
    ];
    for req in &reqs {
        assert!(!ctx.serve(req).unwrap().cached, "{req:?}");
    }
    for req in &reqs {
        assert!(ctx.serve(req).unwrap().cached, "{req:?}");
    }
    // Normalization: surrounding whitespace does not duplicate entries.
    assert!(
        ctx.serve(&QueryRequest::search("  'software'  "))
            .unwrap()
            .cached
    );
}

#[test]
fn hit_and_miss_counters_are_exact_under_concurrent_access() {
    let engine = manual_engine();
    let pool = engine.serve_pool(ServeConfig {
        workers: 4,
        cache_capacity: 64,
        ..ServeConfig::default()
    });
    let queries = ["'software'", "'efficient'", "'usability'", "'algorithm'"];
    // Warm phase: every distinct query misses exactly once.
    for q in &queries {
        assert!(!pool.execute(QueryRequest::search(q)).unwrap().cached);
    }
    // Hot phase: hammer the warm cache from several client threads; the
    // version never moves, so every single lookup must hit.
    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 50;
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let pool = &pool;
            scope.spawn(move || {
                for i in 0..PER_CLIENT {
                    let q = queries[(c + i) % queries.len()];
                    let served = pool.execute(QueryRequest::search(q)).unwrap();
                    assert!(served.cached);
                }
            });
        }
    });
    let stats = pool.stats();
    let total = (CLIENTS * PER_CLIENT + queries.len()) as u64;
    assert_eq!(stats.served(), total, "every request accounted for");
    assert_eq!(stats.cache.misses, queries.len() as u64);
    assert_eq!(stats.cache.hits, (CLIENTS * PER_CLIENT) as u64);
    assert_eq!(
        stats.cache.hits + stats.cache.misses,
        total,
        "hits + misses == lookups, exactly"
    );
    assert_eq!(stats.cache_hits(), stats.cache.hits, "worker view agrees");
}

#[test]
fn pool_answers_match_direct_execution() {
    let engine = manual_engine();
    engine.add("software usability testing with efficient tools");
    let pool = engine.serve_pool(ServeConfig {
        workers: 3,
        cache_capacity: 16,
        ..ServeConfig::default()
    });
    for q in ["'software'", "'software' AND 'usability'", "'nothing'"] {
        let direct = engine.search(q).unwrap();
        let served = pool.execute(QueryRequest::search(q)).unwrap();
        assert_eq!(
            served.answer.as_search().unwrap().node_ids(),
            direct.node_ids(),
            "{q}"
        );
    }
    for model in [RankModel::TfIdf, RankModel::Pra] {
        let direct = engine
            .search_top_k("'software' OR 'usability'", model, 2)
            .unwrap();
        let served = pool
            .execute(QueryRequest::top_k("'software' OR 'usability'", model, 2))
            .unwrap();
        let hits = &served.answer.as_top_k().unwrap().hits;
        assert_eq!(hits.len(), direct.hits.len());
        for (a, b) in hits.iter().zip(&direct.hits) {
            assert_eq!(a.0, b.0, "{model:?}");
            assert_eq!(a.1.to_bits(), b.1.to_bits(), "{model:?} score bits");
        }
    }
    // Errors come back to the requester and are never cached.
    let bad = QueryRequest::search("'unterminated");
    assert!(pool.execute(bad.clone()).is_err());
    assert!(pool.execute(bad).is_err());
    let stats = pool.stats();
    assert_eq!(stats.cache.entries as u64, stats.cache.insertions);
}

#[test]
fn eviction_prefers_stale_versions_then_lru() {
    let engine = manual_engine();
    let cache = Arc::new(ResultCache::new(2));
    let mut ctx = ServeContext::new(Arc::clone(&engine), Arc::clone(&cache));
    ctx.serve(&QueryRequest::search("'software'")).unwrap();
    engine.add("churn"); // stale-ify the first entry
    ctx.serve(&QueryRequest::search("'efficient'")).unwrap();
    ctx.serve(&QueryRequest::search("'usability'")).unwrap(); // evicts the stale one
    let stats = cache.stats();
    assert_eq!(stats.entries, 2);
    assert_eq!(stats.evictions, 1);
    // Both current-version entries survived the eviction.
    assert!(
        ctx.serve(&QueryRequest::search("'efficient'"))
            .unwrap()
            .cached
    );
    assert!(
        ctx.serve(&QueryRequest::search("'usability'"))
            .unwrap()
            .cached
    );
}
