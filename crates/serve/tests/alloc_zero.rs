//! Steady-state allocation accounting: a counting global allocator proves
//! the two serving hot paths are allocation-free once warm.
//!
//! * **Cache-hit path** — `ServeContext::serve` on a warm entry: hash the
//!   key, probe the flat table, clone an `Arc`. Zero heap traffic.
//! * **Scratch-reuse path** — a warm `BlockCursor` walk: the decode
//!   buffers come from the thread-local scratch pool, so re-walking a
//!   block list (including position decode) allocates nothing.
//!
//! The cursor path only engages under `IndexLayout::Blocks` (the default
//! `Decoded` layout streams pre-decoded lists), so the engine here is
//! built with an explicit blocks layout.

use ftsl_core::{LiveConfig, LiveFtsl, RankModel};
use ftsl_exec::engine::ExecOptions;
use ftsl_index::scratch_pool_stats;
use ftsl_index::IndexLayout;
use ftsl_obs::Histogram;
use ftsl_serve::{thread_allocs, CountingAlloc, QueryRequest, ResultCache, ServeContext, SlowLog};
use std::sync::Arc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn blocks_engine() -> Arc<LiveFtsl> {
    let engine = LiveFtsl::with_config(LiveConfig {
        background_merge: false,
        ..LiveConfig::default()
    })
    .with_options(ExecOptions {
        layout: IndexLayout::Blocks,
        ..ExecOptions::default()
    });
    for i in 0..300 {
        engine.add(&format!(
            "document {i} about usability and software systems number{}",
            i % 7
        ));
    }
    engine.flush();
    Arc::new(engine)
}

#[test]
fn cache_hit_serving_allocates_nothing() {
    let engine = blocks_engine();
    let cache = Arc::new(ResultCache::new(32));
    let mut ctx = ServeContext::new(Arc::clone(&engine), Arc::clone(&cache));
    let reqs = [
        QueryRequest::search("'software' AND 'usability'"),
        QueryRequest::top_k("'software' OR 'number3'", RankModel::TfIdf, 10),
    ];
    // Warm: fill the cache (and any lazy statics in the path).
    for req in &reqs {
        assert!(!ctx.serve(req).unwrap().cached);
        assert!(ctx.serve(req).unwrap().cached);
    }
    for req in &reqs {
        let before = thread_allocs();
        for _ in 0..100 {
            let served = ctx.serve(req).unwrap();
            assert!(served.cached);
        }
        let delta = thread_allocs() - before;
        assert_eq!(delta, 0, "cache-hit path allocated {delta} times: {req:?}");
    }
}

/// The observability layer must not cost the zero-alloc guarantee: the
/// exact per-request instrumentation a pool worker performs with metrics
/// on (clock the request, record the latency histogram, check the
/// slow-log threshold) is replayed around the warm cache-hit path.
#[test]
fn metrics_recording_on_the_hit_path_allocates_nothing() {
    let engine = blocks_engine();
    let cache = Arc::new(ResultCache::new(32));
    let mut ctx = ServeContext::new(Arc::clone(&engine), Arc::clone(&cache));
    let req = QueryRequest::search("'software' AND 'usability'");
    assert!(!ctx.serve(&req).unwrap().cached);
    assert!(ctx.serve(&req).unwrap().cached);

    let hist = Histogram::new();
    // Threshold enabled (so the check is real) but unreachably high.
    let slow = SlowLog::new(u64::MAX, 8);
    let before = thread_allocs();
    for _ in 0..100 {
        let start = std::time::Instant::now();
        let served = ctx.serve(&req).unwrap();
        assert!(served.cached);
        let micros = start.elapsed().as_micros() as u64;
        hist.record(micros);
        assert!(!slow.should_log(micros));
    }
    let delta = thread_allocs() - before;
    assert_eq!(delta, 0, "instrumented hit path allocated {delta} times");
    assert_eq!(hist.snapshot().count(), 100);
}

#[test]
fn warm_block_cursor_walks_allocate_nothing() {
    let engine = blocks_engine();
    let snapshot = engine.live_index().snapshot();
    let seg = &snapshot.segments()[0];
    // Grab the widest couple of block lists in the sealed segment.
    let index = seg.data().index();
    let mut lists: Vec<_> = (0..index.num_tokens())
        .map(|t| index.block_list(ftsl_model::TokenId(t as u32)))
        .filter(|l| !l.is_empty())
        .collect();
    lists.sort_by_key(|l| std::cmp::Reverse(l.num_entries()));
    lists.truncate(3);
    assert!(!lists.is_empty());

    let walk = |allocs: &mut u64| {
        let before = thread_allocs();
        let mut checksum = 0u64;
        for list in &lists {
            let mut cur = list.cursor();
            while let Some(node) = cur.next_entry() {
                checksum ^= node.0 as u64 ^ (cur.tf() as u64) << 32;
                for p in cur.positions() {
                    checksum = checksum.wrapping_add(p.offset as u64);
                }
            }
        }
        *allocs += thread_allocs() - before;
        checksum
    };

    // Warm round: leases fresh scratch from the pool (allocates once per
    // buffer) and grows the decode buffers to their steady-state size.
    let mut warm_allocs = 0;
    let reference = walk(&mut warm_allocs);
    let pool_after_warm = scratch_pool_stats();

    // Steady state: every re-walk reuses pooled scratch, zero allocation.
    for round in 0..5 {
        let mut allocs = 0;
        assert_eq!(walk(&mut allocs), reference, "round {round}");
        assert_eq!(allocs, 0, "warm cursor walk allocated {allocs} times");
    }
    let pool = scratch_pool_stats();
    assert_eq!(
        pool.allocated, pool_after_warm.allocated,
        "steady state never allocated a new scratch buffer"
    );
    assert!(
        pool.reused >= pool_after_warm.reused + 15,
        "5 rounds x 3 lists"
    );
}
