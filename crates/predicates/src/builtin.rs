//! The paper's built-in predicates.
//!
//! Positive (Section 5.5.2): `distance`, `ordered`, `samepara`, `samesent`,
//! `window`, `samepos`. Negative (Section 5.6.1): `not_distance`,
//! `not_ordered`, `not_samepara`, `not_samesent`, `diffpos`. General:
//! `exact_gap`.
//!
//! Note on `diffpos`: Section 2.2 lists it among the example predicates; it
//! is *not* positive (its failure region — the diagonal — has satisfying
//! tuples on both sides, so no single cursor can be advanced without losing
//! solutions) but it *is* negative (equality can only be broken by extending
//! the interval), so it is NPRED-evaluable.
//!
//! Note on `not_ordered`: we define it strictly (`p1` *after* `p2`), which
//! satisfies the negative-predicate definition; the non-strict complement of
//! `ordered` is expressible as `not_ordered(p1,p2) OR samepos(p1,p2)`.

use crate::{Advance, AdvanceMode, PredKind, Predicate};
use ftsl_model::Position;
use std::sync::Arc;

fn offsets2(positions: &[Position]) -> (u32, u32) {
    (positions[0].offset, positions[1].offset)
}

/// Index of the smaller-offset argument among two.
fn argmin2(positions: &[Position]) -> usize {
    usize::from(positions[1].offset < positions[0].offset)
}

/// `distance(p1, p2, d)`: at most `d` intervening tokens (Section 2.2).
#[derive(Debug)]
pub struct DistancePred;

impl Predicate for DistancePred {
    fn name(&self) -> &str {
        "distance"
    }
    fn arity(&self) -> usize {
        2
    }
    fn num_consts(&self) -> usize {
        1
    }
    fn kind(&self) -> PredKind {
        PredKind::Positive
    }
    fn eval(&self, positions: &[Position], consts: &[i64]) -> bool {
        i64::from(positions[0].intervening(&positions[1])) <= consts[0]
    }
    fn positive_advance(
        &self,
        positions: &[Position],
        consts: &[i64],
        mode: AdvanceMode,
    ) -> Option<Advance> {
        // The trailing cursor is too far behind; it can catch up.
        let col = argmin2(positions);
        let cur = positions[col].offset;
        let leader = positions[1 - col].offset;
        let min_offset = match mode {
            AdvanceMode::Conservative => cur + 1,
            // Next candidate must satisfy leader - p - 1 <= d, i.e.
            // p >= leader - d - 1 (for any leader' >= leader this is the
            // weakest requirement, so it is a sound lower bound).
            AdvanceMode::Aggressive => {
                let d = consts[0].max(0) as u32;
                (leader.saturating_sub(d + 1)).max(cur + 1)
            }
        };
        Some(Advance {
            column: col,
            min_offset,
        })
    }
}

/// `ordered(p1, p2)`: `p1` occurs strictly before `p2`.
#[derive(Debug)]
pub struct OrderedPred;

impl Predicate for OrderedPred {
    fn name(&self) -> &str {
        "ordered"
    }
    fn arity(&self) -> usize {
        2
    }
    fn num_consts(&self) -> usize {
        0
    }
    fn kind(&self) -> PredKind {
        PredKind::Positive
    }
    fn eval(&self, positions: &[Position], _: &[i64]) -> bool {
        positions[0].before(&positions[1])
    }
    fn positive_advance(
        &self,
        positions: &[Position],
        _: &[i64],
        _: AdvanceMode,
    ) -> Option<Advance> {
        // p1 >= p2: p2 must move past p1 (conservative == aggressive).
        let (p1, _) = offsets2(positions);
        Some(Advance {
            column: 1,
            min_offset: p1 + 1,
        })
    }
}

/// `samepara(p1, p2)`: both positions in the same paragraph.
#[derive(Debug)]
pub struct SameParaPred;

impl Predicate for SameParaPred {
    fn name(&self) -> &str {
        "samepara"
    }
    fn arity(&self) -> usize {
        2
    }
    fn num_consts(&self) -> usize {
        0
    }
    fn kind(&self) -> PredKind {
        PredKind::Positive
    }
    fn eval(&self, positions: &[Position], _: &[i64]) -> bool {
        positions[0].same_paragraph(&positions[1])
    }
    fn positive_advance(
        &self,
        positions: &[Position],
        _: &[i64],
        _: AdvanceMode,
    ) -> Option<Advance> {
        // Paragraph ordinals are monotone in offset, so the position in the
        // earlier paragraph is the one that can catch up. The paragraph
        // boundary offset is not derivable from the positions alone, so the
        // bound is +1; linearity is preserved because each cursor still
        // moves strictly forward.
        let col = usize::from(positions[1].paragraph < positions[0].paragraph);
        Some(Advance {
            column: col,
            min_offset: positions[col].offset + 1,
        })
    }
}

/// `samesent(p1, p2)`: both positions in the same sentence.
#[derive(Debug)]
pub struct SameSentPred;

impl Predicate for SameSentPred {
    fn name(&self) -> &str {
        "samesent"
    }
    fn arity(&self) -> usize {
        2
    }
    fn num_consts(&self) -> usize {
        0
    }
    fn kind(&self) -> PredKind {
        PredKind::Positive
    }
    fn eval(&self, positions: &[Position], _: &[i64]) -> bool {
        positions[0].same_sentence(&positions[1])
    }
    fn positive_advance(
        &self,
        positions: &[Position],
        _: &[i64],
        _: AdvanceMode,
    ) -> Option<Advance> {
        let col = usize::from(positions[1].sentence < positions[0].sentence);
        Some(Advance {
            column: col,
            min_offset: positions[col].offset + 1,
        })
    }
}

/// `window(p1..pn, w)`: all `n` positions within a window of `w` tokens
/// (`max offset − min offset ≤ w`). An n-ary positive predicate.
#[derive(Debug)]
pub struct WindowPred {
    arity: usize,
}

impl WindowPred {
    /// A window predicate over `arity` positions (≥ 2).
    pub fn new(arity: usize) -> Self {
        assert!(arity >= 2);
        WindowPred { arity }
    }
}

impl Predicate for WindowPred {
    fn name(&self) -> &str {
        "window"
    }
    fn arity(&self) -> usize {
        self.arity
    }
    fn num_consts(&self) -> usize {
        1
    }
    fn kind(&self) -> PredKind {
        PredKind::Positive
    }
    fn eval(&self, positions: &[Position], consts: &[i64]) -> bool {
        let min = positions.iter().map(|p| p.offset).min().unwrap();
        let max = positions.iter().map(|p| p.offset).max().unwrap();
        i64::from(max - min) <= consts[0]
    }
    fn positive_advance(
        &self,
        positions: &[Position],
        consts: &[i64],
        mode: AdvanceMode,
    ) -> Option<Advance> {
        let col = positions
            .iter()
            .enumerate()
            .min_by_key(|(_, p)| p.offset)
            .map(|(i, _)| i)
            .unwrap();
        let cur = positions[col].offset;
        let max = positions.iter().map(|p| p.offset).max().unwrap();
        let min_offset = match mode {
            AdvanceMode::Conservative => cur + 1,
            AdvanceMode::Aggressive => {
                let w = consts[0].max(0) as u32;
                (max.saturating_sub(w)).max(cur + 1)
            }
        };
        Some(Advance {
            column: col,
            min_offset,
        })
    }
}

/// `samepos(p1, p2)`: both variables bound to the same position. Used by the
/// planner when one variable is shared between conjuncts; positive.
#[derive(Debug)]
pub struct SamePosPred;

impl Predicate for SamePosPred {
    fn name(&self) -> &str {
        "samepos"
    }
    fn arity(&self) -> usize {
        2
    }
    fn num_consts(&self) -> usize {
        0
    }
    fn kind(&self) -> PredKind {
        PredKind::Positive
    }
    fn eval(&self, positions: &[Position], _: &[i64]) -> bool {
        positions[0].offset == positions[1].offset
    }
    fn positive_advance(
        &self,
        positions: &[Position],
        _: &[i64],
        _: AdvanceMode,
    ) -> Option<Advance> {
        // Advance the smaller cursor directly to the larger's offset.
        let col = argmin2(positions);
        Some(Advance {
            column: col,
            min_offset: positions[1 - col].offset,
        })
    }
}

/// `not_distance(p1, p2, d)`: *more than* `d` intervening tokens — the
/// negation of `distance` (Section 5.6.1's running example).
#[derive(Debug)]
pub struct NotDistancePred;

impl Predicate for NotDistancePred {
    fn name(&self) -> &str {
        "not_distance"
    }
    fn arity(&self) -> usize {
        2
    }
    fn num_consts(&self) -> usize {
        1
    }
    fn kind(&self) -> PredKind {
        PredKind::Negative
    }
    fn eval(&self, positions: &[Position], consts: &[i64]) -> bool {
        i64::from(positions[0].intervening(&positions[1])) > consts[0]
    }
    fn negative_advance(
        &self,
        positions: &[Position],
        consts: &[i64],
        move_column: usize,
    ) -> Option<Advance> {
        // Moving the designated (largest-ranked) cursor extends the gap; it
        // becomes satisfiable at min_offset = other + d + 2.
        let other = positions[1 - move_column].offset;
        let d = consts[0].max(0) as u32;
        let cur = positions[move_column].offset;
        Some(Advance {
            column: move_column,
            min_offset: (other + d + 2).max(cur + 1),
        })
    }
}

/// `not_ordered(p1, p2)`: `p1` occurs strictly *after* `p2`.
#[derive(Debug)]
pub struct NotOrderedPred;

impl Predicate for NotOrderedPred {
    fn name(&self) -> &str {
        "not_ordered"
    }
    fn arity(&self) -> usize {
        2
    }
    fn num_consts(&self) -> usize {
        0
    }
    fn kind(&self) -> PredKind {
        PredKind::Negative
    }
    fn eval(&self, positions: &[Position], _: &[i64]) -> bool {
        positions[1].before(&positions[0])
    }
    fn negative_advance(
        &self,
        positions: &[Position],
        _: &[i64],
        move_column: usize,
    ) -> Option<Advance> {
        let cur = positions[move_column].offset;
        let bound = if move_column == 0 {
            // p1 must pass p2.
            (positions[1].offset + 1).max(cur + 1)
        } else {
            // Moving p2 cannot satisfy p1 > p2 directly; crawl and let the
            // thread whose ordering places p2 first find the solutions.
            cur + 1
        };
        Some(Advance {
            column: move_column,
            min_offset: bound,
        })
    }
}

/// `not_samepara(p1, p2)`: positions in different paragraphs.
#[derive(Debug)]
pub struct NotSameParaPred;

impl Predicate for NotSameParaPred {
    fn name(&self) -> &str {
        "not_samepara"
    }
    fn arity(&self) -> usize {
        2
    }
    fn num_consts(&self) -> usize {
        0
    }
    fn kind(&self) -> PredKind {
        PredKind::Negative
    }
    fn eval(&self, positions: &[Position], _: &[i64]) -> bool {
        !positions[0].same_paragraph(&positions[1])
    }
    fn negative_advance(
        &self,
        positions: &[Position],
        _: &[i64],
        move_column: usize,
    ) -> Option<Advance> {
        Some(Advance {
            column: move_column,
            min_offset: positions[move_column].offset + 1,
        })
    }
}

/// `not_samesent(p1, p2)`: positions in different sentences.
#[derive(Debug)]
pub struct NotSameSentPred;

impl Predicate for NotSameSentPred {
    fn name(&self) -> &str {
        "not_samesent"
    }
    fn arity(&self) -> usize {
        2
    }
    fn num_consts(&self) -> usize {
        0
    }
    fn kind(&self) -> PredKind {
        PredKind::Negative
    }
    fn eval(&self, positions: &[Position], _: &[i64]) -> bool {
        !positions[0].same_sentence(&positions[1])
    }
    fn negative_advance(
        &self,
        positions: &[Position],
        _: &[i64],
        move_column: usize,
    ) -> Option<Advance> {
        Some(Advance {
            column: move_column,
            min_offset: positions[move_column].offset + 1,
        })
    }
}

/// `diffpos(p1, p2)`: distinct positions (Section 2.2's example predicate).
/// Negative, not positive — see the module docs.
#[derive(Debug)]
pub struct DiffPosPred;

impl Predicate for DiffPosPred {
    fn name(&self) -> &str {
        "diffpos"
    }
    fn arity(&self) -> usize {
        2
    }
    fn num_consts(&self) -> usize {
        0
    }
    fn kind(&self) -> PredKind {
        PredKind::Negative
    }
    fn eval(&self, positions: &[Position], _: &[i64]) -> bool {
        positions[0].offset != positions[1].offset
    }
    fn negative_advance(
        &self,
        positions: &[Position],
        _: &[i64],
        move_column: usize,
    ) -> Option<Advance> {
        Some(Advance {
            column: move_column,
            min_offset: positions[move_column].offset + 1,
        })
    }
}

/// `exact_gap(p1, p2, g)`: exactly `g` intervening tokens. Neither positive
/// nor negative (solutions exist on both sides of a failing tuple), so only
/// the COMP engine can evaluate it — a deliberate stress case for the
/// language classifier.
#[derive(Debug)]
pub struct ExactGapPred;

impl Predicate for ExactGapPred {
    fn name(&self) -> &str {
        "exact_gap"
    }
    fn arity(&self) -> usize {
        2
    }
    fn num_consts(&self) -> usize {
        1
    }
    fn kind(&self) -> PredKind {
        PredKind::General
    }
    fn eval(&self, positions: &[Position], consts: &[i64]) -> bool {
        i64::from(positions[0].intervening(&positions[1])) == consts[0]
            && positions[0].offset != positions[1].offset
    }
}

/// All built-in predicates, in registry order.
pub fn builtins() -> Vec<Arc<dyn Predicate>> {
    vec![
        Arc::new(DistancePred),
        Arc::new(OrderedPred),
        Arc::new(SameParaPred),
        Arc::new(SameSentPred),
        Arc::new(WindowPred::new(2)),
        Arc::new(SamePosPred),
        Arc::new(NotDistancePred),
        Arc::new(NotOrderedPred),
        Arc::new(NotSameParaPred),
        Arc::new(NotSameSentPred),
        Arc::new(DiffPosPred),
        Arc::new(ExactGapPred),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(o: u32) -> Position {
        Position::flat(o)
    }

    #[test]
    fn distance_counts_intervening_tokens() {
        let d = DistancePred;
        // Paper example: "efficient" ... "task completion" with at most 10
        // intervening tokens.
        assert!(d.eval(&[p(39), p(42)], &[5]));
        assert!(d.eval(&[p(42), p(39)], &[5])); // symmetric
        assert!(!d.eval(&[p(3), p(25)], &[5]));
        assert!(d.eval(&[p(7), p(7)], &[0]));
    }

    #[test]
    fn distance_aggressive_advance_skips_to_feasible_region() {
        let d = DistancePred;
        let adv = d
            .positive_advance(&[p(3), p(25)], &[5], AdvanceMode::Aggressive)
            .unwrap();
        assert_eq!(adv.column, 0);
        assert_eq!(adv.min_offset, 19); // 25 - (5+1)
        let adv = d
            .positive_advance(&[p(3), p(25)], &[5], AdvanceMode::Conservative)
            .unwrap();
        assert_eq!(
            adv,
            Advance {
                column: 0,
                min_offset: 4
            }
        );
    }

    #[test]
    fn distance_advance_always_progresses() {
        let d = DistancePred;
        // Even when the aggressive bound would not move the cursor (huge d),
        // the advance must make strict progress.
        let adv = d
            .positive_advance(&[p(100), p(3)], &[1000], AdvanceMode::Aggressive)
            .unwrap();
        assert!(adv.min_offset > p(3).offset.min(p(100).offset));
        assert_eq!(adv.column, 1);
    }

    #[test]
    fn ordered_moves_second_past_first() {
        let o = OrderedPred;
        assert!(o.eval(&[p(3), p(9)], &[]));
        assert!(!o.eval(&[p(9), p(3)], &[]));
        assert!(!o.eval(&[p(4), p(4)], &[]));
        let adv = o
            .positive_advance(&[p(9), p(3)], &[], AdvanceMode::Aggressive)
            .unwrap();
        assert_eq!(
            adv,
            Advance {
                column: 1,
                min_offset: 10
            }
        );
    }

    #[test]
    fn samepara_advances_earlier_paragraph() {
        let s = SameParaPred;
        let a = Position::new(5, 0, 0);
        let b = Position::new(40, 3, 2);
        assert!(!s.eval(&[a, b], &[]));
        let adv = s
            .positive_advance(&[a, b], &[], AdvanceMode::Aggressive)
            .unwrap();
        assert_eq!(adv.column, 0);
        assert_eq!(adv.min_offset, 6);
        assert!(s.eval(&[Position::new(40, 3, 2), b], &[]));
    }

    #[test]
    fn window_is_nary() {
        let w = WindowPred::new(3);
        assert!(w.eval(&[p(10), p(12), p(14)], &[4]));
        assert!(!w.eval(&[p(10), p(12), p(20)], &[4]));
        let adv = w
            .positive_advance(&[p(10), p(12), p(20)], &[4], AdvanceMode::Aggressive)
            .unwrap();
        assert_eq!(adv.column, 0);
        assert_eq!(adv.min_offset, 16); // 20 - 4
    }

    #[test]
    fn samepos_jumps_directly() {
        let s = SamePosPred;
        assert!(s.eval(&[p(5), p(5)], &[]));
        assert!(!s.eval(&[p(5), p(9)], &[]));
        let adv = s
            .positive_advance(&[p(5), p(9)], &[], AdvanceMode::Aggressive)
            .unwrap();
        assert_eq!(
            adv,
            Advance {
                column: 0,
                min_offset: 9
            }
        );
    }

    #[test]
    fn not_distance_requires_wide_gap() {
        let nd = NotDistancePred;
        assert!(nd.eval(&[p(0), p(100)], &[40]));
        assert!(!nd.eval(&[p(0), p(30)], &[40]));
        let adv = nd.negative_advance(&[p(0), p(30)], &[40], 1).unwrap();
        assert_eq!(
            adv,
            Advance {
                column: 1,
                min_offset: 42
            }
        ); // 0 + 40 + 2
        assert!(nd.eval(&[p(0), p(42)], &[40]));
    }

    #[test]
    fn not_ordered_is_strict() {
        let no = NotOrderedPred;
        assert!(no.eval(&[p(9), p(3)], &[]));
        assert!(!no.eval(&[p(3), p(3)], &[]));
        assert!(!no.eval(&[p(3), p(9)], &[]));
        let adv = no.negative_advance(&[p(3), p(9)], &[], 0).unwrap();
        assert_eq!(
            adv,
            Advance {
                column: 0,
                min_offset: 10
            }
        );
    }

    #[test]
    fn diffpos_is_negative_not_positive() {
        let dp = DiffPosPred;
        assert_eq!(dp.kind(), PredKind::Negative);
        assert!(dp.eval(&[p(3), p(4)], &[]));
        assert!(!dp.eval(&[p(3), p(3)], &[]));
        assert!(dp
            .positive_advance(&[p(3), p(3)], &[], AdvanceMode::Aggressive)
            .is_none());
        let adv = dp.negative_advance(&[p(3), p(3)], &[], 1).unwrap();
        assert_eq!(
            adv,
            Advance {
                column: 1,
                min_offset: 4
            }
        );
    }

    #[test]
    fn exact_gap_is_general() {
        let eg = ExactGapPred;
        assert_eq!(eg.kind(), PredKind::General);
        assert!(eg.eval(&[p(10), p(14)], &[3]));
        assert!(eg.eval(&[p(14), p(10)], &[3]));
        assert!(!eg.eval(&[p(10), p(13)], &[3]));
        assert!(!eg.eval(&[p(10), p(10)], &[0]));
        assert!(eg
            .positive_advance(&[p(10), p(13)], &[3], AdvanceMode::Aggressive)
            .is_none());
        assert!(eg.negative_advance(&[p(10), p(13)], &[3], 0).is_none());
    }
}
