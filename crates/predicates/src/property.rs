//! Brute-force checkers of the positive- and negative-predicate definitions.
//!
//! These enumerate small position universes and verify the *semantic*
//! properties that the streaming engines rely on. They are deliberately
//! exponential — they exist so property tests can certify each built-in's
//! [`crate::PredKind`] claim and each advance function's soundness.

use crate::{AdvanceMode, Predicate};
use ftsl_model::Position;

/// Every failing tuple's advance must (a) make strict progress on the chosen
/// column and (b) be *sound*: no satisfying tuple exists with the chosen
/// column's offset in `[current, min_offset)` while every coordinate is ≥ the
/// current tuple (the paper's Definition 1 box condition).
///
/// `universe` is the candidate position set per coordinate (positions of one
/// node). Returns the first violating tuple, if any.
pub fn check_positive_advance_sound(
    pred: &dyn Predicate,
    universe: &[Position],
    consts: &[i64],
    mode: AdvanceMode,
) -> Option<Vec<Position>> {
    let n = pred.arity();
    let mut tuple = vec![0usize; n];
    loop {
        let positions: Vec<Position> = tuple.iter().map(|&i| universe[i]).collect();
        if !pred.eval(&positions, consts) {
            let Some(adv) = pred.positive_advance(&positions, consts, mode) else {
                return Some(positions);
            };
            // (a) strict progress
            if adv.min_offset <= positions[adv.column].offset {
                return Some(positions);
            }
            // (b) soundness: no solution in the skipped box
            if let Some(sol) = find_solution_in_box(
                pred,
                universe,
                consts,
                &positions,
                adv.column,
                adv.min_offset,
            ) {
                let _ = sol;
                return Some(positions);
            }
        }
        if !next_tuple(&mut tuple, universe.len()) {
            return None;
        }
    }
}

fn find_solution_in_box(
    pred: &dyn Predicate,
    universe: &[Position],
    consts: &[i64],
    current: &[Position],
    column: usize,
    min_offset: u32,
) -> Option<Vec<Position>> {
    let n = current.len();
    let mut tuple = vec![0usize; n];
    loop {
        let cand: Vec<Position> = tuple.iter().map(|&i| universe[i]).collect();
        let in_box = cand[column].offset >= current[column].offset
            && cand[column].offset < min_offset
            && (0..n).all(|j| j == column || cand[j].offset >= current[j].offset);
        if in_box && pred.eval(&cand, consts) {
            return Some(cand);
        }
        if !next_tuple(&mut tuple, universe.len()) {
            return None;
        }
    }
}

/// The negative-predicate property (Section 5.6.1): if a tuple fails, every
/// tuple *bounded* by its sorted coordinates also fails — i.e. the predicate
/// can only be satisfied by extending the interval beyond the current
/// maximum.
pub fn check_negative_property(
    pred: &dyn Predicate,
    universe: &[Position],
    consts: &[i64],
) -> Option<Vec<Position>> {
    let n = pred.arity();
    let mut tuple = vec![0usize; n];
    loop {
        let positions: Vec<Position> = tuple.iter().map(|&i| universe[i]).collect();
        if !pred.eval(&positions, consts) {
            // The ordering i1..in of Section 5.6.1: coordinate indices
            // sorted by offset (ties broken by index).
            let mut perm: Vec<usize> = (0..n).collect();
            perm.sort_by_key(|&i| (positions[i].offset, i));
            if let Some(bad) = find_bounded_solution(pred, universe, consts, &positions, &perm) {
                return Some(bad);
            }
        }
        if !next_tuple(&mut tuple, universe.len()) {
            return None;
        }
    }
}

/// Search for a *satisfying* tuple inside the paper's `Bounded` region of a
/// failing tuple: candidates that preserve the coordinate ordering `perm`,
/// dominate the failing tuple coordinate-wise on all but the largest
/// coordinate, and whose largest coordinate does not exceed the failing
/// tuple's maximum. The negative-predicate property demands this search
/// always comes up empty.
fn find_bounded_solution(
    pred: &dyn Predicate,
    universe: &[Position],
    consts: &[i64],
    current: &[Position],
    perm: &[usize],
) -> Option<Vec<Position>> {
    let n = current.len();
    let mut tuple = vec![0usize; n];
    loop {
        let cand: Vec<Position> = tuple.iter().map(|&i| universe[i]).collect();
        let mut bounded = true;
        for k in 0..n - 1 {
            let (ik, ik1) = (perm[k], perm[k + 1]);
            if cand[ik].offset < current[ik].offset || cand[ik].offset > cand[ik1].offset {
                bounded = false;
                break;
            }
        }
        let last = perm[n - 1];
        if cand[last].offset < current[perm[0]].offset || cand[last].offset > current[last].offset {
            bounded = false;
        }
        if bounded && pred.eval(&cand, consts) {
            return Some(cand);
        }
        if !next_tuple(&mut tuple, universe.len()) {
            return None;
        }
    }
}

/// Odometer-style tuple enumeration; returns false when wrapped around.
fn next_tuple(tuple: &mut [usize], base: usize) -> bool {
    for slot in tuple.iter_mut() {
        *slot += 1;
        if *slot < base {
            return true;
        }
        *slot = 0;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::*;

    fn universe() -> Vec<Position> {
        // Structured universe: 3 paragraphs, 2 sentences each.
        (0u32..12)
            .map(|o| Position::new(o * 3, o / 2, o / 4))
            .collect()
    }

    #[test]
    fn positive_builtins_have_sound_advances() {
        let u = universe();
        for mode in [AdvanceMode::Conservative, AdvanceMode::Aggressive] {
            assert_eq!(
                check_positive_advance_sound(&DistancePred, &u, &[4], mode),
                None
            );
            assert_eq!(
                check_positive_advance_sound(&OrderedPred, &u, &[], mode),
                None
            );
            assert_eq!(
                check_positive_advance_sound(&SameParaPred, &u, &[], mode),
                None
            );
            assert_eq!(
                check_positive_advance_sound(&SameSentPred, &u, &[], mode),
                None
            );
            assert_eq!(
                check_positive_advance_sound(&WindowPred::new(2), &u, &[7], mode),
                None
            );
            assert_eq!(
                check_positive_advance_sound(&SamePosPred, &u, &[], mode),
                None
            );
        }
    }

    #[test]
    fn negative_builtins_satisfy_negative_property() {
        let u = universe();
        assert_eq!(check_negative_property(&NotDistancePred, &u, &[4]), None);
        assert_eq!(check_negative_property(&NotOrderedPred, &u, &[]), None);
        assert_eq!(check_negative_property(&DiffPosPred, &u, &[]), None);
        assert_eq!(check_negative_property(&NotSameParaPred, &u, &[]), None);
        assert_eq!(check_negative_property(&NotSameSentPred, &u, &[]), None);
    }

    #[test]
    fn diffpos_fails_the_positive_property() {
        // diffpos has no positive advance at all; the checker reports the
        // diagonal tuple as the witness.
        let u = universe();
        let witness = check_positive_advance_sound(&DiffPosPred, &u, &[], AdvanceMode::Aggressive);
        assert!(witness.is_some());
    }

    #[test]
    fn exact_gap_fails_both_properties() {
        // g = 5 means a satisfied pair is 6 offsets apart, which exists in
        // the multiples-of-3 universe; the failing pair (0, 33) then has a
        // satisfying tuple strictly inside its bounded region.
        let u = universe();
        assert!(
            check_positive_advance_sound(&ExactGapPred, &u, &[5], AdvanceMode::Aggressive)
                .is_some()
        );
        assert!(check_negative_property(&ExactGapPred, &u, &[5]).is_some());
    }
}
