//! # ftsl-predicates — position-based predicates
//!
//! The calculus and algebra are parameterized by a set `Preds` of
//! position-based predicates (Section 2.2). This crate provides:
//!
//! * the [`Predicate`] trait — arbitrary `pred(p1..pm, c1..cr)` predicates,
//!   keeping the model "extensible with respect to the set of predicates";
//! * the classification into **positive** (Definition 1, Section 5.5.2) and
//!   **negative** (Section 5.6.1) predicates, with the advance functions
//!   (`f_i`) that make single-scan evaluation possible;
//! * the paper's built-ins: `distance`, `ordered`, `samepara`, `samesent`,
//!   `window`, `samepos` (positive); `not_distance`, `not_ordered`,
//!   `not_samepara`, `not_samesent`, `diffpos` (negative); and `exact_gap`
//!   (neither — exercising the COMP-only path);
//! * brute-force checkers of the two definitions used by property tests.

pub mod builtin;
pub mod property;
pub mod registry;

pub use builtin::builtins;
pub use registry::{PredicateId, PredicateRegistry};

use ftsl_model::Position;
use std::fmt;

/// How aggressively positive-predicate advances skip ahead.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AdvanceMode {
    /// Advance the chosen cursor by a single position (`f_i = p_i + 1`).
    /// Always sound; used as the ablation baseline.
    Conservative,
    /// Use the tightest sound lower bound (e.g. for `distance`, jump the
    /// trailing cursor to `leader − d − 1`).
    #[default]
    Aggressive,
}

/// Classification of a predicate per Sections 5.5.2 and 5.6.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PredKind {
    /// True on a "contiguous region" of position space: single-scan
    /// evaluable (PPRED).
    Positive,
    /// Can only be made true by extending the interval between smallest and
    /// largest position: evaluable with per-ordering scans (NPRED).
    Negative,
    /// Neither — only the materialized COMP engine can evaluate it.
    General,
}

/// An instruction to move one cursor forward.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Advance {
    /// Which position argument (column) to advance.
    pub column: usize,
    /// Inclusive lower bound on the next candidate's offset. Always strictly
    /// greater than the current offset of `column`, guaranteeing progress.
    pub min_offset: u32,
}

/// A position-based predicate `pred(p1..pm, c1..cr)`.
pub trait Predicate: fmt::Debug + Send + Sync {
    /// Surface-syntax name (as written in COMP queries).
    fn name(&self) -> &str;

    /// Number of position arguments (`m`).
    fn arity(&self) -> usize;

    /// Number of integer constants (`r`).
    fn num_consts(&self) -> usize;

    /// Positive / negative / general classification.
    fn kind(&self) -> PredKind;

    /// Evaluate on concrete positions and constants.
    ///
    /// Callers must supply exactly `arity()` positions and `num_consts()`
    /// constants.
    fn eval(&self, positions: &[Position], consts: &[i64]) -> bool;

    /// For **positive** predicates: given a failing tuple, the `f_i`
    /// function — a column to advance and the lower bound of the next
    /// possible solution. Returns `None` for non-positive predicates.
    fn positive_advance(
        &self,
        positions: &[Position],
        consts: &[i64],
        mode: AdvanceMode,
    ) -> Option<Advance> {
        let _ = (positions, consts, mode);
        None
    }

    /// For **negative** predicates: given a failing tuple and the column the
    /// evaluation thread is allowed to move (the largest in its ordering),
    /// the lower bound for that column's next candidate. Returns `None` for
    /// non-negative predicates.
    fn negative_advance(
        &self,
        positions: &[Position],
        consts: &[i64],
        move_column: usize,
    ) -> Option<Advance> {
        let _ = (positions, consts, move_column);
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Dummy;
    impl Predicate for Dummy {
        fn name(&self) -> &str {
            "dummy"
        }
        fn arity(&self) -> usize {
            1
        }
        fn num_consts(&self) -> usize {
            0
        }
        fn kind(&self) -> PredKind {
            PredKind::General
        }
        fn eval(&self, _: &[Position], _: &[i64]) -> bool {
            true
        }
    }

    #[test]
    fn default_advances_are_none_for_general_predicates() {
        let d = Dummy;
        assert_eq!(d.positive_advance(&[], &[], AdvanceMode::Aggressive), None);
        assert_eq!(d.negative_advance(&[], &[], 0), None);
    }
}
