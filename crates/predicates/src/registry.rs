//! Predicate registry: name → predicate resolution shared by parser,
//! calculus, algebra and engines.

use crate::builtin::builtins;
use crate::Predicate;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Dense identifier of a registered predicate.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PredicateId(pub u32);

impl PredicateId {
    /// Raw index value.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PredicateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pred{}", self.0)
    }
}

/// A set `Preds` of position-based predicates, resolvable by name.
#[derive(Clone)]
pub struct PredicateRegistry {
    preds: Vec<Arc<dyn Predicate>>,
    by_name: HashMap<String, PredicateId>,
}

impl PredicateRegistry {
    /// An empty registry (`Preds = ∅`, as in the Theorem 3/4 setting).
    pub fn empty() -> Self {
        PredicateRegistry {
            preds: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// The registry of all built-in predicates.
    pub fn with_builtins() -> Self {
        let mut reg = Self::empty();
        for p in builtins() {
            reg.register(p);
        }
        reg
    }

    /// Register a predicate; returns its id. Re-registering a name replaces
    /// the resolution but keeps old ids valid.
    pub fn register(&mut self, pred: Arc<dyn Predicate>) -> PredicateId {
        let id = PredicateId(self.preds.len() as u32);
        self.by_name.insert(pred.name().to_string(), id);
        self.preds.push(pred);
        id
    }

    /// Resolve a predicate by name.
    pub fn lookup(&self, name: &str) -> Option<PredicateId> {
        self.by_name.get(name).copied()
    }

    /// The predicate for an id.
    pub fn get(&self, id: PredicateId) -> &dyn Predicate {
        self.preds[id.index()].as_ref()
    }

    /// A shared handle to the predicate for an id (for cursors that outlive
    /// the borrow of the registry).
    pub fn get_shared(&self, id: PredicateId) -> Arc<dyn Predicate> {
        Arc::clone(&self.preds[id.index()])
    }

    /// Number of registered predicates.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// True iff no predicates are registered.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Iterate `(id, predicate)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PredicateId, &dyn Predicate)> {
        self.preds
            .iter()
            .enumerate()
            .map(|(i, p)| (PredicateId(i as u32), p.as_ref()))
    }
}

impl Default for PredicateRegistry {
    fn default() -> Self {
        Self::with_builtins()
    }
}

impl fmt::Debug for PredicateRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PredicateRegistry({} predicates)", self.preds.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PredKind;

    #[test]
    fn builtins_resolve_by_name() {
        let reg = PredicateRegistry::with_builtins();
        for name in [
            "distance",
            "ordered",
            "samepara",
            "samesent",
            "window",
            "samepos",
            "not_distance",
            "not_ordered",
            "not_samepara",
            "not_samesent",
            "diffpos",
            "exact_gap",
        ] {
            let id = reg.lookup(name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(reg.get(id).name(), name);
        }
        assert!(reg.lookup("nonsense").is_none());
    }

    #[test]
    fn kind_partition_is_as_documented() {
        let reg = PredicateRegistry::with_builtins();
        let mut pos = 0;
        let mut neg = 0;
        let mut gen = 0;
        for (_, p) in reg.iter() {
            match p.kind() {
                PredKind::Positive => pos += 1,
                PredKind::Negative => neg += 1,
                PredKind::General => gen += 1,
            }
        }
        assert_eq!((pos, neg, gen), (6, 5, 1));
    }

    #[test]
    fn empty_registry() {
        let reg = PredicateRegistry::empty();
        assert!(reg.is_empty());
        assert_eq!(reg.len(), 0);
        assert!(reg.lookup("distance").is_none());
    }
}
