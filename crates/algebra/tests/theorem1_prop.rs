//! Property tests for Theorem 1: the full-text calculus and algebra are
//! equivalent in expressive power.
//!
//! * Lemma 2 direction: random calculus queries → algebra; both evaluated.
//! * Lemma 1 direction: random algebra queries → calculus; both evaluated.

use ftsl_algebra::eval::AlgebraEvaluator;
use ftsl_algebra::from_calculus::query_to_algebra;
use ftsl_algebra::to_calculus::query_to_calculus;
use ftsl_algebra::AlgExpr;
use ftsl_calculus::ast::{CalcQuery, QueryExpr, VarId};
use ftsl_calculus::interp::Interpreter;
use ftsl_model::Corpus;
use ftsl_predicates::{PredicateId, PredicateRegistry};
use proptest::prelude::*;

const TOKENS: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

fn registry() -> PredicateRegistry {
    PredicateRegistry::with_builtins()
}

fn arb_corpus() -> impl Strategy<Value = Corpus> {
    proptest::collection::vec(proptest::collection::vec(0..TOKENS.len(), 0..7), 1..6).prop_map(
        |docs| {
            let texts: Vec<String> = docs
                .into_iter()
                .map(|toks| {
                    toks.into_iter()
                        .map(|t| TOKENS[t])
                        .collect::<Vec<_>>()
                        .join(" ")
                })
                .collect();
            Corpus::from_texts(&texts)
        },
    )
}

/// Predicates usable in random queries: (registry index known a priori),
/// arity 2 with constants.
fn arb_pred() -> impl Strategy<Value = (String, Vec<i64>)> {
    prop_oneof![
        (0..6i64).prop_map(|d| ("distance".to_string(), vec![d])),
        Just(("ordered".to_string(), vec![])),
        Just(("samepara".to_string(), vec![])),
        Just(("diffpos".to_string(), vec![])),
        (0..4i64).prop_map(|d| ("not_distance".to_string(), vec![d])),
        (0..5i64).prop_map(|g| ("exact_gap".to_string(), vec![g])),
    ]
}

/// Random closed calculus expressions with ≤ `depth` quantifier nesting.
fn arb_calc(depth: u32, scope: Vec<VarId>) -> BoxedStrategy<QueryExpr> {
    let reg = registry();
    let atom: Option<BoxedStrategy<QueryExpr>> = if scope.is_empty() {
        None
    } else {
        let scope1 = scope.clone();
        let scope2 = scope.clone();
        let pred_strategy =
            (arb_pred(), 0..scope.len(), 0..scope.len()).prop_map(move |((name, consts), i, j)| {
                let id: PredicateId = reg.lookup(&name).unwrap();
                QueryExpr::Pred {
                    pred: id,
                    vars: vec![scope2[i], scope2[j]],
                    consts,
                }
            });
        Some(
            prop_oneof![
                (0..scope.len(), 0..TOKENS.len()).prop_map(move |(vi, ti)| {
                    QueryExpr::HasToken(scope1[vi], TOKENS[ti].to_string())
                }),
                pred_strategy,
            ]
            .boxed(),
        )
    };

    if depth == 0 {
        return match atom {
            Some(a) => a,
            None => Just(QueryExpr::Exists(
                VarId(200),
                Box::new(QueryExpr::HasToken(VarId(200), "alpha".to_string())),
            ))
            .boxed(),
        };
    }

    let fresh = VarId(200 + depth);
    let mut inner_scope = scope.clone();
    inner_scope.push(fresh);
    let sub = arb_calc(depth - 1, scope);
    let sub_q = arb_calc(depth - 1, inner_scope);

    let mut opts: Vec<BoxedStrategy<QueryExpr>> = vec![
        (sub.clone(), sub.clone())
            .prop_map(|(a, b)| QueryExpr::And(Box::new(a), Box::new(b)))
            .boxed(),
        (sub.clone(), sub.clone())
            .prop_map(|(a, b)| QueryExpr::Or(Box::new(a), Box::new(b)))
            .boxed(),
        sub.clone()
            .prop_map(|a| QueryExpr::Not(Box::new(a)))
            .boxed(),
        sub_q
            .clone()
            .prop_map(move |a| QueryExpr::Exists(fresh, Box::new(a)))
            .boxed(),
        sub_q
            .prop_map(move |a| QueryExpr::Forall(fresh, Box::new(a)))
            .boxed(),
    ];
    if let Some(a) = atom {
        opts.push(a);
    }
    proptest::strategy::Union::new(opts).boxed()
}

/// Random algebra expressions of bounded size, always wrapped to arity 0.
fn arb_alg(depth: u32) -> BoxedStrategy<AlgExpr> {
    let leaf = prop_oneof![
        (0..TOKENS.len()).prop_map(|t| AlgExpr::TokenRel(TOKENS[t].to_string())),
        Just(AlgExpr::HasPos),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = arb_alg(depth - 1);
    prop_oneof![
        3 => leaf,
        2 => (sub.clone(), sub.clone()).prop_map(|(a, b)| AlgExpr::Join(Box::new(a), Box::new(b))),
        2 => (sub.clone(), arb_pred()).prop_map(|(a, (name, consts))| {
            let reg = registry();
            let id = reg.lookup(&name).unwrap();
            // Guarantee an arity-2 base: pad arity-0 inputs with HasPos.
            let one = |e: AlgExpr| -> AlgExpr {
                if e.arity(&reg) == Ok(0) {
                    AlgExpr::Join(Box::new(e), Box::new(AlgExpr::HasPos))
                } else {
                    AlgExpr::Project(Box::new(e), vec![0])
                }
            };
            AlgExpr::Select {
                input: Box::new(AlgExpr::Join(Box::new(one(a.clone())), Box::new(one(a)))),
                pred: id,
                cols: vec![0, 1],
                consts,
            }
        }),
        1 => (sub.clone(), sub.clone()).prop_map(|(a, b)| {
            // Align arities for set ops by projecting both to node level.
            AlgExpr::Union(
                Box::new(AlgExpr::Project(Box::new(a), vec![])),
                Box::new(AlgExpr::Project(Box::new(b), vec![])),
            )
        }),
        1 => (sub.clone(), sub).prop_map(|(a, b)| {
            AlgExpr::Difference(
                Box::new(AlgExpr::Project(Box::new(a), vec![])),
                Box::new(AlgExpr::Project(Box::new(b), vec![])),
            )
        }),
    ]
    .boxed()
}

/// Property-case count: `FTSL_PROPTEST_CASES` raises it for the scheduled
/// deep-fuzz CI job; the default keeps PR builds quick.
fn prop_cases() -> u32 {
    std::env::var("FTSL_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(96)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(prop_cases()))]

    #[test]
    fn lemma2_calculus_to_algebra_preserves_semantics(
        expr in arb_calc(3, vec![]),
        corpus in arb_corpus(),
    ) {
        let reg = registry();
        let index = ftsl_index::IndexBuilder::new().build(&corpus);
        let query = CalcQuery::new(expr);
        let interp = Interpreter::new(&corpus, &reg);
        let expected = interp.eval_query(&query);
        let alg = query_to_algebra(&query, &reg).expect("translate");
        let mut ev = AlgebraEvaluator::new(&corpus, &index, &reg);
        let got = ev.eval(&alg).expect("evaluate").distinct_nodes();
        prop_assert_eq!(got, expected, "query {:?}", query.expr);
    }

    #[test]
    fn lemma1_algebra_to_calculus_preserves_semantics(
        expr in arb_alg(3),
        corpus in arb_corpus(),
    ) {
        let reg = registry();
        let index = ftsl_index::IndexBuilder::new().build(&corpus);
        // Wrap to arity 0 (an algebra *query*).
        let query_expr = AlgExpr::Project(Box::new(expr), vec![]);
        let mut ev = AlgebraEvaluator::new(&corpus, &index, &reg);
        let expected = ev.eval(&query_expr).expect("evaluate").distinct_nodes();
        let calc = query_to_calculus(&query_expr, &reg).expect("translate");
        let interp = Interpreter::new(&corpus, &reg);
        let got = interp.eval_query(&calc);
        prop_assert_eq!(got, expected, "algebra {:?}", query_expr);
    }
}
