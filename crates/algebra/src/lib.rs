//! # ftsl-algebra — the full-text algebra (FTA)
//!
//! Section 2.3 of the paper: *full-text relations* of shape
//! `R[CNode, att1..attm]` whose position attributes always refer to positions
//! of the tuple's own context node, and operators `SearchContext`, `HasPos`,
//! `R_token`, `π` (always keeping `CNode`), `⋈` (equi-join on `CNode` only —
//! a per-node cartesian product of positions), `σ_pred`, `∪`, `∩`, `−`.
//!
//! This crate provides:
//!
//! * [`relation::FtRelation`] — flat columnar tuple storage;
//! * [`expr::AlgExpr`] — the operator AST with arity checking;
//! * [`eval::AlgebraEvaluator`] — the materialized evaluator used by the
//!   COMP engine (Section 5.4), instrumented with tuple counters;
//! * [`from_calculus`] — Lemma 2 (calculus → algebra), the constructive half
//!   of Theorem 1 that query compilation uses;
//! * [`to_calculus`] — Lemma 1 (algebra → calculus), used to machine-check
//!   the equivalence by differential testing.

pub mod error;
pub mod eval;
pub mod expr;
pub mod from_calculus;
pub mod relation;
pub mod to_calculus;

pub use error::AlgebraError;
pub use eval::AlgebraEvaluator;
pub use expr::AlgExpr;
pub use relation::FtRelation;
