//! The materialized algebra evaluator (the COMP engine's backend,
//! Section 5.4).
//!
//! Evaluates bottom-up, fully materializing every intermediate full-text
//! relation — per-node cartesian products and all. This realizes the paper's
//! `O(cnodes × pos_per_cnode^toks_Q × (preds_Q + ops_Q + 1))` bound, and the
//! tuple counter lets benchmarks verify that growth directly.

use crate::error::AlgebraError;
use crate::expr::AlgExpr;
use crate::relation::FtRelation;
use ftsl_index::{AccessCounters, IndexLayout, InvertedIndex};
use ftsl_model::{Corpus, TokenId};
use ftsl_predicates::PredicateRegistry;

/// Evaluator for [`AlgExpr`] against a corpus + index.
///
/// Leaf scans read whichever physical layout was requested (and whatever
/// the index's residency policy allows): decoded columnar views — resident
/// or rebuilt through the index's LRU decode cache — or the compressed
/// blocks streamed entry by entry at the cursor.
pub struct AlgebraEvaluator<'a> {
    corpus: &'a Corpus,
    index: &'a InvertedIndex,
    registry: &'a PredicateRegistry,
    layout: IndexLayout,
    counters: AccessCounters,
}

impl<'a> AlgebraEvaluator<'a> {
    /// Create an evaluator scanning the decoded layout (subject to the
    /// index's residency policy).
    pub fn new(
        corpus: &'a Corpus,
        index: &'a InvertedIndex,
        registry: &'a PredicateRegistry,
    ) -> Self {
        Self::with_layout(corpus, index, registry, IndexLayout::Decoded)
    }

    /// Create an evaluator with an explicit leaf-scan layout.
    pub fn with_layout(
        corpus: &'a Corpus,
        index: &'a InvertedIndex,
        registry: &'a PredicateRegistry,
        layout: IndexLayout,
    ) -> Self {
        AlgebraEvaluator {
            corpus,
            index,
            registry,
            layout: index.effective_layout(layout),
            counters: AccessCounters::new(),
        }
    }

    /// Counters accumulated across evaluations.
    pub fn counters(&self) -> AccessCounters {
        self.counters
    }

    /// Evaluate an expression to a materialized relation.
    pub fn eval(&mut self, expr: &AlgExpr) -> Result<FtRelation, AlgebraError> {
        expr.arity(self.registry)?;
        Ok(self.eval_unchecked(expr))
    }

    fn eval_unchecked(&mut self, expr: &AlgExpr) -> FtRelation {
        let rel = match expr {
            AlgExpr::SearchContext => {
                let mut r = FtRelation::new(0);
                for n in self.corpus.node_ids() {
                    r.push(n, &[]);
                }
                r
            }
            AlgExpr::HasPos => self.scan(None),
            AlgExpr::TokenRel(tok) => match self.corpus.token_id(tok) {
                Some(id) => self.scan(Some(id)),
                None => FtRelation::new(1),
            },
            AlgExpr::Project(e, cols) => self.eval_unchecked(e).project(cols),
            AlgExpr::Join(a, b) => {
                let left = self.eval_unchecked(a);
                let right = self.eval_unchecked(b);
                left.join(&right)
            }
            AlgExpr::Select {
                input,
                pred,
                cols,
                consts,
            } => {
                let rel = self.eval_unchecked(input);
                rel.select(self.registry.get(*pred), cols, consts)
            }
            AlgExpr::Union(a, b) => {
                let left = self.eval_unchecked(a);
                let right = self.eval_unchecked(b);
                left.union(&right)
            }
            AlgExpr::Intersect(a, b) => {
                let left = self.eval_unchecked(a);
                let right = self.eval_unchecked(b);
                left.intersect(&right)
            }
            AlgExpr::Difference(a, b) => {
                let left = self.eval_unchecked(a);
                let right = self.eval_unchecked(b);
                left.difference(&right)
            }
        };
        self.counters.tuples += rel.len() as u64;
        rel
    }

    /// Materialize a leaf relation (a token's list, or `IL_ANY` for `None`)
    /// from the configured physical layout. COMP inspects every position it
    /// materializes, so `positions_decoded` equals `positions` here — the
    /// streaming engines are where the two diverge.
    fn scan(&mut self, token: Option<TokenId>) -> FtRelation {
        let mut r = FtRelation::new(1);
        let mut push = |counters: &mut AccessCounters, node, positions: &[ftsl_model::Position]| {
            counters.entries += 1;
            for &p in positions {
                counters.positions += 1;
                counters.positions_decoded += 1;
                r.push(node, &[p]);
            }
        };
        match self.layout {
            IndexLayout::Decoded => {
                let view = match token {
                    Some(id) => self.index.decoded_list(id),
                    None => self.index.decoded_any(),
                };
                for (node, positions) in view.iter() {
                    push(&mut self.counters, node, positions);
                }
            }
            IndexLayout::Blocks => {
                let mut cur = match token {
                    Some(id) => self.index.block_cursor(id),
                    None => self.index.any_block_cursor(),
                };
                while let Some(node) = cur.next_entry() {
                    push(&mut self.counters, node, cur.positions());
                }
            }
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ops::*;
    use ftsl_index::IndexBuilder;
    use ftsl_model::NodeId;

    fn setup() -> (Corpus, InvertedIndex, PredicateRegistry) {
        let corpus = Corpus::from_texts(&[
            "test driven usability",
            "usability test",
            "test test something",
            "nothing relevant here",
        ]);
        let index = IndexBuilder::new().build(&corpus);
        (corpus, index, PredicateRegistry::with_builtins())
    }

    fn nodes(r: &FtRelation) -> Vec<u32> {
        r.distinct_nodes().into_iter().map(|n| n.0).collect()
    }

    #[test]
    fn paper_query_conjunction() {
        // π_CNode(R_test ⋈ R_usability)
        let (corpus, index, reg) = setup();
        let mut ev = AlgebraEvaluator::new(&corpus, &index, &reg);
        let e = project_nodes(join(token("test"), token("usability")));
        let r = ev.eval(&e).unwrap();
        assert_eq!(nodes(&r), vec![0, 1]);
        assert_eq!(r.arity(), 0);
    }

    #[test]
    fn paper_query_distance() {
        // π_CNode(σ_distance(0,1,5)(R_test ⋈ R_usability))
        let (corpus, index, reg) = setup();
        let distance = reg.lookup("distance").unwrap();
        let mut ev = AlgebraEvaluator::new(&corpus, &index, &reg);
        let e = project_nodes(select(
            join(token("test"), token("usability")),
            distance,
            &[0, 1],
            &[5],
        ));
        let r = ev.eval(&e).unwrap();
        assert_eq!(nodes(&r), vec![0, 1]);
    }

    #[test]
    fn paper_query_double_occurrence_without_token() {
        // π_CNode(σ_diffpos(R_test ⋈ R_test)) ⋈ (SearchContext − π_CNode(R_usability))
        let (corpus, index, reg) = setup();
        let diffpos = reg.lookup("diffpos").unwrap();
        let mut ev = AlgebraEvaluator::new(&corpus, &index, &reg);
        let doubled = project_nodes(select(
            join(token("test"), token("test")),
            diffpos,
            &[0, 1],
            &[],
        ));
        let without = difference(AlgExpr::SearchContext, project_nodes(token("usability")));
        let e = join(doubled, without);
        let r = ev.eval(&e).unwrap();
        assert_eq!(nodes(&r), vec![2]);
    }

    #[test]
    fn unknown_token_gives_empty_relation() {
        let (corpus, index, reg) = setup();
        let mut ev = AlgebraEvaluator::new(&corpus, &index, &reg);
        let r = ev.eval(&token("zzzz")).unwrap();
        assert!(r.is_empty());
        assert_eq!(r.arity(), 1);
    }

    #[test]
    fn search_context_includes_all_nodes() {
        let (corpus, index, reg) = setup();
        let mut ev = AlgebraEvaluator::new(&corpus, &index, &reg);
        let r = ev.eval(&AlgExpr::SearchContext).unwrap();
        assert_eq!(r.len(), corpus.len());
    }

    #[test]
    fn counters_track_materialized_tuples() {
        let (corpus, index, reg) = setup();
        let mut ev = AlgebraEvaluator::new(&corpus, &index, &reg);
        let e = join(token("test"), token("test"));
        let r = ev.eval(&e).unwrap();
        // node0: 1 test, node1: 1, node2: 2 -> join sizes 1+1+4 = 6
        assert_eq!(r.len(), 6);
        let c = ev.counters();
        assert!(c.tuples >= 6);
        assert!(c.positions >= 4);
    }

    #[test]
    fn bad_expression_is_rejected_before_evaluation() {
        let (corpus, index, reg) = setup();
        let mut ev = AlgebraEvaluator::new(&corpus, &index, &reg);
        let e = union(token("a"), AlgExpr::SearchContext);
        assert!(ev.eval(&e).is_err());
    }

    #[test]
    fn difference_on_node_sets() {
        let (corpus, index, reg) = setup();
        let mut ev = AlgebraEvaluator::new(&corpus, &index, &reg);
        let e = difference(AlgExpr::SearchContext, project_nodes(token("test")));
        let r = ev.eval(&e).unwrap();
        assert_eq!(r.distinct_nodes(), vec![NodeId(3)]);
    }
}
