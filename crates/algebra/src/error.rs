//! Algebra errors.

use std::fmt;

/// Errors raised while checking or evaluating algebra expressions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AlgebraError {
    /// Set operation over mismatched arities.
    ArityMismatch {
        /// Operator name.
        op: &'static str,
        /// Left arity.
        left: usize,
        /// Right arity.
        right: usize,
    },
    /// Projection or selection referenced a column that does not exist.
    ColumnOutOfRange {
        /// Requested column.
        col: usize,
        /// Input arity.
        arity: usize,
    },
    /// A predicate application did not match the registered signature.
    BadPredicateApplication(String),
    /// A predicate id was not found in the registry.
    UnknownPredicate(u32),
}

impl fmt::Display for AlgebraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgebraError::ArityMismatch { op, left, right } => {
                write!(f, "{op} over mismatched arities {left} vs {right}")
            }
            AlgebraError::ColumnOutOfRange { col, arity } => {
                write!(f, "column {col} out of range for arity {arity}")
            }
            AlgebraError::BadPredicateApplication(msg) => write!(f, "{msg}"),
            AlgebraError::UnknownPredicate(id) => write!(f, "unknown predicate id {id}"),
        }
    }
}

impl std::error::Error for AlgebraError {}
