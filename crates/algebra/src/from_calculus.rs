//! Lemma 2 of Theorem 1: calculus → algebra translation.
//!
//! For every calculus expression with free variables `p1..pk` there is an
//! algebra expression over a relation with matching position columns. This
//! is the constructive half used for query compilation: the COMP engine
//! parses COMP to the calculus, translates here, and evaluates the algebra.
//!
//! Column convention: every translated expression's columns correspond to
//! its free variables **in ascending `VarId` order**; permutation
//! projections are inserted wherever the construction produces a different
//! order. Conjunction with shared variables uses the lemma's
//! `(E1 ⋈ π E2) ∩ (π E1 ⋈ E2)` construction; disjunction pads missing
//! variables with `HasPos` columns (the lemma's padding via projections is
//! equivalent for final, fully-projected queries; `HasPos` padding is also
//! correct for intermediate relations, which our differential tests check).

use crate::error::AlgebraError;
use crate::expr::AlgExpr;
use ftsl_calculus::ast::{CalcQuery, QueryExpr, VarId};
use ftsl_calculus::safety;
use ftsl_calculus::vars::uniquify;
use ftsl_predicates::PredicateRegistry;

/// An algebra expression together with the variable each column represents
/// (ascending `VarId` order).
#[derive(Clone, Debug)]
pub struct Translated {
    /// The algebra expression.
    pub expr: AlgExpr,
    /// Column-to-variable mapping, sorted ascending.
    pub vars: Vec<VarId>,
}

/// Translate a closed calculus query to an arity-0 algebra query.
pub fn query_to_algebra(
    query: &CalcQuery,
    registry: &PredicateRegistry,
) -> Result<AlgExpr, AlgebraError> {
    safety::check_query(query, registry)
        .map_err(|e| AlgebraError::BadPredicateApplication(e.to_string()))?;
    let expr = uniquify(&query.expr);
    let t = translate(&expr, registry)?;
    debug_assert!(
        t.vars.is_empty(),
        "closed query translated to arity {}",
        t.vars.len()
    );
    Ok(t.expr)
}

/// Translate an arbitrary (possibly open) expression.
#[allow(clippy::only_used_in_recursion)] // the registry parameter is part of the public contract
pub fn translate(
    expr: &QueryExpr,
    registry: &PredicateRegistry,
) -> Result<Translated, AlgebraError> {
    Ok(match expr {
        QueryExpr::HasPos(v) => Translated {
            expr: AlgExpr::HasPos,
            vars: vec![*v],
        },
        QueryExpr::HasToken(v, t) => Translated {
            expr: AlgExpr::TokenRel(t.clone()),
            vars: vec![*v],
        },
        QueryExpr::Pred { pred, vars, consts } => {
            // σ_pred over a HasPos^k base covering the distinct variables.
            let mut unique: Vec<VarId> = vars.clone();
            unique.sort_unstable();
            unique.dedup();
            let base = has_pos_power(unique.len());
            let cols: Vec<usize> = vars
                .iter()
                .map(|v| unique.iter().position(|u| u == v).expect("var present"))
                .collect();
            Translated {
                expr: AlgExpr::Select {
                    input: Box::new(base),
                    pred: *pred,
                    cols,
                    consts: consts.clone(),
                },
                vars: unique,
            }
        }
        QueryExpr::Not(e) => {
            let inner = translate(e, registry)?;
            if inner.vars.is_empty() {
                Translated {
                    expr: AlgExpr::Difference(
                        Box::new(AlgExpr::SearchContext),
                        Box::new(inner.expr),
                    ),
                    vars: vec![],
                }
            } else {
                let base = has_pos_power(inner.vars.len());
                Translated {
                    expr: AlgExpr::Difference(Box::new(base), Box::new(inner.expr)),
                    vars: inner.vars,
                }
            }
        }
        QueryExpr::And(a, b) => {
            // Optimization (the Figure 4 plan shape): a predicate conjunct
            // whose variables are already covered becomes a selection.
            if let QueryExpr::Pred { pred, vars, consts } = b.as_ref() {
                let left = translate(a, registry)?;
                if vars.iter().all(|v| left.vars.contains(v)) {
                    let cols: Vec<usize> = vars
                        .iter()
                        .map(|v| left.vars.iter().position(|u| u == v).unwrap())
                        .collect();
                    return Ok(Translated {
                        expr: AlgExpr::Select {
                            input: Box::new(left.expr),
                            pred: *pred,
                            cols,
                            consts: consts.clone(),
                        },
                        vars: left.vars,
                    });
                }
            }
            if let QueryExpr::Pred { pred, vars, consts } = a.as_ref() {
                let right = translate(b, registry)?;
                if vars.iter().all(|v| right.vars.contains(v)) {
                    let cols: Vec<usize> = vars
                        .iter()
                        .map(|v| right.vars.iter().position(|u| u == v).unwrap())
                        .collect();
                    return Ok(Translated {
                        expr: AlgExpr::Select {
                            input: Box::new(right.expr),
                            pred: *pred,
                            cols,
                            consts: consts.clone(),
                        },
                        vars: right.vars,
                    });
                }
            }
            let left = translate(a, registry)?;
            let right = translate(b, registry)?;
            conjoin(left, right)
        }
        QueryExpr::Or(a, b) => {
            let left = translate(a, registry)?;
            let right = translate(b, registry)?;
            disjoin(left, right)
        }
        QueryExpr::Exists(v, e) => {
            let inner = translate(e, registry)?;
            if let Some(idx) = inner.vars.iter().position(|u| u == v) {
                let keep: Vec<usize> = (0..inner.vars.len()).filter(|&i| i != idx).collect();
                let vars: Vec<VarId> = keep.iter().map(|&i| inner.vars[i]).collect();
                Translated {
                    expr: AlgExpr::Project(Box::new(inner.expr), keep),
                    vars,
                }
            } else {
                // ∃v over an expression not mentioning v: the node must be
                // non-empty (have at least one position to bind v to).
                let nonempty = AlgExpr::Project(Box::new(AlgExpr::HasPos), vec![]);
                Translated {
                    expr: AlgExpr::Join(Box::new(inner.expr), Box::new(nonempty)),
                    vars: inner.vars,
                }
            }
        }
        QueryExpr::Forall(v, e) => {
            // ∀v (hasPos ⇒ e) = ¬∃v (hasPos ∧ ¬e)
            let rewritten = QueryExpr::Not(Box::new(QueryExpr::Exists(
                *v,
                Box::new(QueryExpr::Not(e.clone())),
            )));
            return translate(&rewritten, registry);
        }
    })
}

/// `HasPos ⋈ ... ⋈ HasPos` with `k` columns (`k ≥ 1`).
fn has_pos_power(k: usize) -> AlgExpr {
    assert!(k >= 1);
    let mut e = AlgExpr::HasPos;
    for _ in 1..k {
        e = AlgExpr::Join(Box::new(e), Box::new(AlgExpr::HasPos));
    }
    e
}

/// Project-permute `expr` (with columns `from`) onto the variable order
/// `to` (a subset or reordering of `from`).
fn permute(expr: AlgExpr, from: &[VarId], to: &[VarId]) -> AlgExpr {
    if from == to {
        return expr;
    }
    let cols: Vec<usize> = to
        .iter()
        .map(|v| from.iter().position(|u| u == v).expect("permute var"))
        .collect();
    AlgExpr::Project(Box::new(expr), cols)
}

/// The Lemma 2 conjunction construction.
fn conjoin(left: Translated, right: Translated) -> Translated {
    let shared: Vec<VarId> = left
        .vars
        .iter()
        .copied()
        .filter(|v| right.vars.contains(v))
        .collect();
    let u1: Vec<VarId> = left
        .vars
        .iter()
        .copied()
        .filter(|v| !shared.contains(v))
        .collect();
    let u2: Vec<VarId> = right
        .vars
        .iter()
        .copied()
        .filter(|v| !shared.contains(v))
        .collect();
    let mut all: Vec<VarId> = left.vars.iter().chain(right.vars.iter()).copied().collect();
    all.sort_unstable();
    all.dedup();

    if shared.is_empty() {
        // Plain cartesian join, then reorder to ascending variable ids.
        let joined_vars: Vec<VarId> = left.vars.iter().chain(right.vars.iter()).copied().collect();
        let expr = AlgExpr::Join(Box::new(left.expr), Box::new(right.expr));
        return Translated {
            expr: permute(expr, &joined_vars, &all),
            vars: all,
        };
    }

    // term1 = E1 ⋈ π_{u2}(E2): columns v1 ++ u2
    let term1_vars: Vec<VarId> = left.vars.iter().chain(u2.iter()).copied().collect();
    let term1 = AlgExpr::Join(
        Box::new(left.expr.clone()),
        Box::new(permute(right.expr.clone(), &right.vars, &u2)),
    );
    let term1 = permute(term1, &term1_vars, &all);

    // term2 = π_{u1}(E1) ⋈ E2: columns u1 ++ v2
    let term2_vars: Vec<VarId> = u1.iter().chain(right.vars.iter()).copied().collect();
    let term2 = AlgExpr::Join(
        Box::new(permute(left.expr, &left.vars, &u1)),
        Box::new(right.expr),
    );
    let term2 = permute(term2, &term2_vars, &all);

    Translated {
        expr: AlgExpr::Intersect(Box::new(term1), Box::new(term2)),
        vars: all,
    }
}

/// Disjunction with `HasPos` padding for one-sided variables.
fn disjoin(left: Translated, right: Translated) -> Translated {
    let u1: Vec<VarId> = left
        .vars
        .iter()
        .copied()
        .filter(|v| !right.vars.contains(v))
        .collect();
    let u2: Vec<VarId> = right
        .vars
        .iter()
        .copied()
        .filter(|v| !left.vars.contains(v))
        .collect();
    let mut all: Vec<VarId> = left.vars.iter().chain(right.vars.iter()).copied().collect();
    all.sort_unstable();
    all.dedup();

    let pad = |t: Translated, missing: &[VarId]| -> AlgExpr {
        if missing.is_empty() {
            permute(t.expr, &t.vars, &all)
        } else {
            let padded_vars: Vec<VarId> = t.vars.iter().chain(missing.iter()).copied().collect();
            let expr = AlgExpr::Join(Box::new(t.expr), Box::new(has_pos_power(missing.len())));
            permute(expr, &padded_vars, &all)
        }
    };

    let l = pad(left, &u2);
    let r = pad(right, &u1);
    Translated {
        expr: AlgExpr::Union(Box::new(l), Box::new(r)),
        vars: all,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::AlgebraEvaluator;
    use ftsl_calculus::build::*;
    use ftsl_calculus::interp::Interpreter;
    use ftsl_index::IndexBuilder;
    use ftsl_model::Corpus;

    fn setup() -> (Corpus, ftsl_index::InvertedIndex, PredicateRegistry) {
        let corpus = Corpus::from_texts(&[
            "test driven usability",
            "usability test",
            "test test something",
            "nothing relevant here",
            "",
            "usability usability",
        ]);
        let index = IndexBuilder::new().build(&corpus);
        (corpus, index, PredicateRegistry::with_builtins())
    }

    fn check_equivalent(expr: QueryExpr) {
        let (corpus, index, reg) = setup();
        let q = CalcQuery::new(expr);
        let interp = Interpreter::new(&corpus, &reg);
        let expected = interp.eval_query(&q);
        let alg = query_to_algebra(&q, &reg).expect("translate");
        let mut ev = AlgebraEvaluator::new(&corpus, &index, &reg);
        let got = ev.eval(&alg).expect("evaluate").distinct_nodes();
        assert_eq!(got, expected, "diverged for {:?} => {:?}", q.expr, alg);
    }

    #[test]
    fn conjunction_of_tokens() {
        check_equivalent(and(contains(1, "test"), contains(2, "usability")));
    }

    #[test]
    fn negation_is_complement_wrt_search_context() {
        check_equivalent(not(contains(1, "test")));
    }

    #[test]
    fn distance_predicate_becomes_selection() {
        let reg = PredicateRegistry::with_builtins();
        let distance = reg.lookup("distance").unwrap();
        check_equivalent(exists(
            1,
            and(
                has_token(1, "test"),
                exists(
                    2,
                    and(has_token(2, "usability"), pred(distance, &[1, 2], &[5])),
                ),
            ),
        ));
    }

    #[test]
    fn shared_variable_conjunction_uses_intersection() {
        // ∃p (hasToken(p,'test') ∧ hasToken(p,'test')) — same var twice.
        check_equivalent(exists(1, and(has_token(1, "test"), has_token(1, "test"))));
        // Contradictory: a position holding two different tokens.
        check_equivalent(exists(
            1,
            and(has_token(1, "test"), has_token(1, "usability")),
        ));
    }

    #[test]
    fn disjunction_with_asymmetric_vars() {
        check_equivalent(or(contains(1, "test"), contains(2, "usability")));
        check_equivalent(exists(
            1,
            or(
                has_token(1, "test"),
                and(has_token(1, "usability"), contains(2, "driven")),
            ),
        ));
    }

    #[test]
    fn forall_roundtrip() {
        check_equivalent(forall(1, has_token(1, "usability")));
    }

    #[test]
    fn exists_over_unused_variable_requires_nonempty_node() {
        // ∃p (hasPos(p)) ∧ ¬hasToken-ish: simplest: ∃p over expr not using p.
        check_equivalent(exists(1, exists(2, has_token(2, "usability"))));
        check_equivalent(exists(1, not(contains(2, "usability"))));
    }

    #[test]
    fn double_occurrence_example() {
        let reg = PredicateRegistry::with_builtins();
        let diffpos = reg.lookup("diffpos").unwrap();
        check_equivalent(exists(
            1,
            and(
                has_token(1, "test"),
                exists(
                    2,
                    and(
                        and(has_token(2, "test"), pred(diffpos, &[1, 2], &[])),
                        forall(3, not(has_token(3, "usability"))),
                    ),
                ),
            ),
        ));
    }

    #[test]
    fn pred_with_repeated_variable() {
        let reg = PredicateRegistry::with_builtins();
        let distance = reg.lookup("distance").unwrap();
        // distance(p,p,0) is trivially true wherever p is bound.
        check_equivalent(exists(
            1,
            and(has_token(1, "test"), pred(distance, &[1, 1], &[0])),
        ));
    }
}
