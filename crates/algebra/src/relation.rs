//! Full-text relations: `R[CNode, att1..attm]` with flat columnar storage.

use ftsl_model::{NodeId, Position};
use std::cmp::Ordering;

/// A materialized full-text relation.
///
/// Tuples are stored row-major: `positions[i*arity .. (i+1)*arity]` are the
/// position attributes of row `i`, whose context node is `nodes[i]`.
/// All operators keep relations **canonical**: rows sorted by
/// `(node, positions)` with duplicates removed, so set operations are merges.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FtRelation {
    arity: usize,
    nodes: Vec<NodeId>,
    positions: Vec<Position>,
}

impl FtRelation {
    /// An empty relation with `arity` position attributes.
    pub fn new(arity: usize) -> Self {
        FtRelation {
            arity,
            nodes: Vec::new(),
            positions: Vec::new(),
        }
    }

    /// Number of position attributes (`m`).
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Append a tuple. Callers must canonicalize afterwards unless rows are
    /// pushed in canonical order.
    pub fn push(&mut self, node: NodeId, positions: &[Position]) {
        debug_assert_eq!(positions.len(), self.arity);
        self.nodes.push(node);
        self.positions.extend_from_slice(positions);
    }

    /// The `i`-th tuple.
    pub fn tuple(&self, i: usize) -> (NodeId, &[Position]) {
        (
            self.nodes[i],
            &self.positions[i * self.arity..(i + 1) * self.arity],
        )
    }

    /// Iterate all tuples.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &[Position])> {
        (0..self.len()).map(move |i| self.tuple(i))
    }

    fn row_cmp(&self, i: usize, j: usize) -> Ordering {
        let (ni, pi) = self.tuple(i);
        let (nj, pj) = self.tuple(j);
        ni.cmp(&nj)
            .then_with(|| pi.iter().map(|p| p.offset).cmp(pj.iter().map(|p| p.offset)))
    }

    /// Sort rows by `(node, positions)` and remove duplicates.
    pub fn canonicalize(&mut self) {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.sort_by(|&a, &b| self.row_cmp(a, b));
        order.dedup_by(|a, b| self.row_cmp(*a, *b) == Ordering::Equal);
        let mut nodes = Vec::with_capacity(order.len());
        let mut positions = Vec::with_capacity(order.len() * self.arity);
        for &i in &order {
            let (n, ps) = self.tuple(i);
            nodes.push(n);
            positions.extend_from_slice(ps);
        }
        self.nodes = nodes;
        self.positions = positions;
    }

    /// `π` over the given column indices (in the given order — permutations
    /// allowed; `CNode` is always implicitly kept). Canonicalizes.
    pub fn project(&self, cols: &[usize]) -> FtRelation {
        debug_assert!(cols.iter().all(|&c| c < self.arity));
        let mut out = FtRelation::new(cols.len());
        let mut row = Vec::with_capacity(cols.len());
        for (node, ps) in self.iter() {
            row.clear();
            row.extend(cols.iter().map(|&c| ps[c]));
            out.push(node, &row);
        }
        out.canonicalize();
        out
    }

    /// `⋈`: equi-join on `CNode` only — within each node, the cartesian
    /// product of the two sides' position rows (Section 2.3.1). Both inputs
    /// must be canonical.
    pub fn join(&self, other: &FtRelation) -> FtRelation {
        let mut out = FtRelation::new(self.arity + other.arity);
        let mut row = Vec::with_capacity(out.arity);
        let mut j_start = 0usize;
        for (node, left) in self.iter() {
            // Advance to this node's group in `other`.
            while j_start < other.len() && other.nodes[j_start] < node {
                j_start += 1;
            }
            let mut j = j_start;
            while j < other.len() && other.nodes[j] == node {
                let (_, right) = other.tuple(j);
                row.clear();
                row.extend_from_slice(left);
                row.extend_from_slice(right);
                out.push(node, &row);
                j += 1;
            }
        }
        // Left side is sorted, so output is canonical already except for
        // possible duplicates in non-canonical input; canonicalize cheaply.
        out.canonicalize();
        out
    }

    /// `σ`: retain rows where `pred` holds on the positions selected by
    /// `cols` with constants `consts`.
    pub fn select(
        &self,
        pred: &dyn ftsl_predicates::Predicate,
        cols: &[usize],
        consts: &[i64],
    ) -> FtRelation {
        let mut out = FtRelation::new(self.arity);
        let mut args = Vec::with_capacity(cols.len());
        for (node, ps) in self.iter() {
            args.clear();
            args.extend(cols.iter().map(|&c| ps[c]));
            if pred.eval(&args, consts) {
                out.push(node, ps);
            }
        }
        out
    }

    /// `∪` of two canonical relations of equal arity.
    pub fn union(&self, other: &FtRelation) -> FtRelation {
        debug_assert_eq!(self.arity, other.arity);
        let mut out = self.clone();
        for (node, ps) in other.iter() {
            out.push(node, ps);
        }
        out.canonicalize();
        out
    }

    /// `∩` of two canonical relations of equal arity.
    pub fn intersect(&self, other: &FtRelation) -> FtRelation {
        debug_assert_eq!(self.arity, other.arity);
        let mut out = FtRelation::new(self.arity);
        for (node, ps) in self.iter() {
            if other.contains(node, ps) {
                out.push(node, ps);
            }
        }
        out
    }

    /// `−` of two canonical relations of equal arity.
    pub fn difference(&self, other: &FtRelation) -> FtRelation {
        debug_assert_eq!(self.arity, other.arity);
        let mut out = FtRelation::new(self.arity);
        for (node, ps) in self.iter() {
            if !other.contains(node, ps) {
                out.push(node, ps);
            }
        }
        out
    }

    /// Binary-search membership (requires canonical form).
    pub fn contains(&self, node: NodeId, positions: &[Position]) -> bool {
        self.find(node, positions).is_some()
    }

    fn find(&self, node: NodeId, positions: &[Position]) -> Option<usize> {
        let mut lo = 0usize;
        let mut hi = self.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            let (n, ps) = self.tuple(mid);
            let ord = n.cmp(&node).then_with(|| {
                ps.iter()
                    .map(|p| p.offset)
                    .cmp(positions.iter().map(|p| p.offset))
            });
            match ord {
                Ordering::Less => lo = mid + 1,
                Ordering::Greater => hi = mid,
                Ordering::Equal => return Some(mid),
            }
        }
        None
    }

    /// The distinct node ids of all tuples (the final answer of an algebra
    /// query, which by definition has arity 0 — but useful at any arity).
    pub fn distinct_nodes(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self.nodes.clone();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsl_predicates::PredicateRegistry;

    fn p(o: u32) -> Position {
        Position::flat(o)
    }

    fn rel(rows: &[(u32, &[u32])]) -> FtRelation {
        let arity = rows.first().map_or(0, |(_, ps)| ps.len());
        let mut r = FtRelation::new(arity);
        for (n, ps) in rows {
            let row: Vec<Position> = ps.iter().map(|&o| p(o)).collect();
            r.push(NodeId(*n), &row);
        }
        r.canonicalize();
        r
    }

    #[test]
    fn canonicalize_sorts_and_dedups() {
        let r = rel(&[(2, &[5]), (1, &[9]), (1, &[3]), (1, &[9])]);
        let rows: Vec<(u32, u32)> = r.iter().map(|(n, ps)| (n.0, ps[0].offset)).collect();
        assert_eq!(rows, vec![(1, 3), (1, 9), (2, 5)]);
    }

    #[test]
    fn join_is_per_node_cartesian_product() {
        let a = rel(&[(1, &[10]), (1, &[20]), (2, &[1])]);
        let b = rel(&[(1, &[7]), (1, &[8]), (3, &[9])]);
        let j = a.join(&b);
        assert_eq!(j.arity(), 2);
        let rows: Vec<(u32, u32, u32)> = j
            .iter()
            .map(|(n, ps)| (n.0, ps[0].offset, ps[1].offset))
            .collect();
        assert_eq!(rows, vec![(1, 10, 7), (1, 10, 8), (1, 20, 7), (1, 20, 8)]);
    }

    #[test]
    fn join_with_arity0_is_a_semijoin() {
        let a = rel(&[(1, &[10]), (2, &[20]), (3, &[30])]);
        let mut b = FtRelation::new(0);
        b.push(NodeId(2), &[]);
        b.push(NodeId(3), &[]);
        b.canonicalize();
        let j = a.join(&b);
        let nodes: Vec<u32> = j.iter().map(|(n, _)| n.0).collect();
        assert_eq!(nodes, vec![2, 3]);
        assert_eq!(j.arity(), 1);
    }

    #[test]
    fn project_permutes_and_dedups() {
        let a = rel(&[(1, &[10, 7]), (1, &[10, 8])]);
        let swapped = a.project(&[1, 0]);
        let rows: Vec<(u32, u32)> = swapped
            .iter()
            .map(|(_, ps)| (ps[0].offset, ps[1].offset))
            .collect();
        assert_eq!(rows, vec![(7, 10), (8, 10)]);
        let first_only = a.project(&[0]);
        assert_eq!(first_only.len(), 1);
    }

    #[test]
    fn select_applies_predicate_on_columns() {
        let reg = PredicateRegistry::with_builtins();
        let distance = reg.get(reg.lookup("distance").unwrap());
        let a = rel(&[(1, &[3, 25]), (1, &[39, 42])]);
        let s = a.select(distance, &[0, 1], &[5]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.tuple(0).1[0].offset, 39);
    }

    #[test]
    fn set_operations() {
        let a = rel(&[(1, &[1]), (2, &[2]), (3, &[3])]);
        let b = rel(&[(2, &[2]), (4, &[4])]);
        assert_eq!(a.union(&b).len(), 4);
        assert_eq!(a.intersect(&b).len(), 1);
        assert_eq!(a.difference(&b).len(), 2);
        assert_eq!(
            a.difference(&b).distinct_nodes(),
            vec![NodeId(1), NodeId(3)]
        );
    }

    #[test]
    fn contains_uses_binary_search() {
        let a = rel(&[(1, &[1, 2]), (1, &[1, 5]), (7, &[0, 0])]);
        assert!(a.contains(NodeId(1), &[p(1), p(5)]));
        assert!(!a.contains(NodeId(1), &[p(1), p(4)]));
        assert!(a.contains(NodeId(7), &[p(0), p(0)]));
        assert!(!a.contains(NodeId(9), &[p(0), p(0)]));
    }

    #[test]
    fn arity0_relations_model_node_sets() {
        let mut a = FtRelation::new(0);
        a.push(NodeId(3), &[]);
        a.push(NodeId(1), &[]);
        a.push(NodeId(3), &[]);
        a.canonicalize();
        assert_eq!(a.len(), 2);
        assert_eq!(a.distinct_nodes(), vec![NodeId(1), NodeId(3)]);
    }
}
