//! Lemma 1 of Theorem 1: algebra → calculus translation.
//!
//! For every algebra expression producing `R(CNode, att1..attk)` there is a
//! calculus expression with free variables `p1..pk` denoting the same
//! relation. Used to machine-check the equivalence theorem by differential
//! testing (`tests/theorem1_prop.rs`).

use crate::error::AlgebraError;
use crate::expr::AlgExpr;
use ftsl_calculus::ast::{CalcQuery, QueryExpr, VarId};
use ftsl_predicates::PredicateRegistry;

/// Translate an arity-0 algebra query into a closed calculus query.
pub fn query_to_calculus(
    expr: &AlgExpr,
    registry: &PredicateRegistry,
) -> Result<CalcQuery, AlgebraError> {
    let arity = expr.arity(registry)?;
    if arity != 0 {
        return Err(AlgebraError::BadPredicateApplication(format!(
            "algebra queries must have arity 0, got {arity}"
        )));
    }
    let mut fresh = 0u32;
    let e = to_calculus(expr, &[], &mut fresh, registry)?;
    Ok(CalcQuery::new(e))
}

/// Translate an algebra expression; `vars` names its columns (one fresh
/// variable per column, supplied by the caller).
pub fn to_calculus(
    expr: &AlgExpr,
    vars: &[VarId],
    fresh: &mut u32,
    registry: &PredicateRegistry,
) -> Result<QueryExpr, AlgebraError> {
    Ok(match expr {
        AlgExpr::SearchContext => {
            // The lemma's tautology: every context node qualifies.
            let v = next(fresh);
            QueryExpr::Or(
                Box::new(QueryExpr::Exists(v, Box::new(QueryExpr::HasPos(v)))),
                Box::new(QueryExpr::Not(Box::new(QueryExpr::Exists(
                    v,
                    Box::new(QueryExpr::HasPos(v)),
                )))),
            )
        }
        AlgExpr::HasPos => QueryExpr::HasPos(vars[0]),
        AlgExpr::TokenRel(t) => QueryExpr::HasToken(vars[0], t.clone()),
        AlgExpr::Project(input, cols) => {
            let input_arity = input.arity(registry)?;
            // Give every input column a variable: kept columns reuse the
            // caller's, dropped columns get fresh ones quantified away.
            let mut inner_vars: Vec<Option<VarId>> = vec![None; input_arity];
            for (i, &c) in cols.iter().enumerate() {
                inner_vars[c] = Some(vars[i]);
            }
            let mut dropped = Vec::new();
            let inner_vars: Vec<VarId> = inner_vars
                .into_iter()
                .map(|v| {
                    v.unwrap_or_else(|| {
                        let w = next(fresh);
                        dropped.push(w);
                        w
                    })
                })
                .collect();
            let mut body = to_calculus(input, &inner_vars, fresh, registry)?;
            for w in dropped {
                body = QueryExpr::Exists(w, Box::new(body));
            }
            body
        }
        AlgExpr::Join(a, b) => {
            let la = a.arity(registry)?;
            let (va, vb) = vars.split_at(la);
            QueryExpr::And(
                Box::new(to_calculus(a, va, fresh, registry)?),
                Box::new(to_calculus(b, vb, fresh, registry)?),
            )
        }
        AlgExpr::Select {
            input,
            pred,
            cols,
            consts,
        } => {
            let body = to_calculus(input, vars, fresh, registry)?;
            let pred_vars: Vec<VarId> = cols.iter().map(|&c| vars[c]).collect();
            QueryExpr::And(
                Box::new(body),
                Box::new(QueryExpr::Pred {
                    pred: *pred,
                    vars: pred_vars,
                    consts: consts.clone(),
                }),
            )
        }
        AlgExpr::Union(a, b) => QueryExpr::Or(
            Box::new(to_calculus(a, vars, fresh, registry)?),
            Box::new(to_calculus(b, vars, fresh, registry)?),
        ),
        AlgExpr::Intersect(a, b) => QueryExpr::And(
            Box::new(to_calculus(a, vars, fresh, registry)?),
            Box::new(to_calculus(b, vars, fresh, registry)?),
        ),
        AlgExpr::Difference(a, b) => QueryExpr::And(
            Box::new(to_calculus(a, vars, fresh, registry)?),
            Box::new(QueryExpr::Not(Box::new(to_calculus(
                b, vars, fresh, registry,
            )?))),
        ),
    })
}

fn next(fresh: &mut u32) -> VarId {
    let v = VarId(1_000_000 + *fresh);
    *fresh += 1;
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::AlgebraEvaluator;
    use crate::expr::ops::*;
    use ftsl_calculus::interp::Interpreter;
    use ftsl_index::IndexBuilder;
    use ftsl_model::Corpus;

    fn check_equivalent(expr: AlgExpr) {
        let corpus = Corpus::from_texts(&[
            "test driven usability",
            "usability test",
            "test test something",
            "nothing relevant here",
            "",
        ]);
        let index = IndexBuilder::new().build(&corpus);
        let reg = PredicateRegistry::with_builtins();
        let mut ev = AlgebraEvaluator::new(&corpus, &index, &reg);
        let expected = ev.eval(&expr).expect("algebra eval").distinct_nodes();
        let q = query_to_calculus(&expr, &reg).expect("translate");
        let interp = Interpreter::new(&corpus, &reg);
        let got = interp.eval_query(&q);
        assert_eq!(got, expected, "diverged for {expr:?} => {:?}", q.expr);
    }

    #[test]
    fn paper_conjunction() {
        check_equivalent(project_nodes(join(token("test"), token("usability"))));
    }

    #[test]
    fn paper_distance_selection() {
        let reg = PredicateRegistry::with_builtins();
        let distance = reg.lookup("distance").unwrap();
        check_equivalent(project_nodes(select(
            join(token("test"), token("usability")),
            distance,
            &[0, 1],
            &[5],
        )));
    }

    #[test]
    fn paper_difference_example() {
        let reg = PredicateRegistry::with_builtins();
        let diffpos = reg.lookup("diffpos").unwrap();
        let doubled = project_nodes(select(
            join(token("test"), token("test")),
            diffpos,
            &[0, 1],
            &[],
        ));
        let without = difference(AlgExpr::SearchContext, project_nodes(token("usability")));
        check_equivalent(join(doubled, without));
    }

    #[test]
    fn search_context_is_a_tautology() {
        check_equivalent(AlgExpr::SearchContext);
    }

    #[test]
    fn permuting_projection() {
        let reg = PredicateRegistry::with_builtins();
        let ordered = reg.lookup("ordered").unwrap();
        // Swap columns before applying ordered: ordered(att2, att1).
        check_equivalent(project_nodes(select(
            project(join(token("test"), token("usability")), &[1, 0]),
            ordered,
            &[0, 1],
            &[],
        )));
    }

    #[test]
    fn union_and_intersection() {
        check_equivalent(project_nodes(union(token("test"), token("usability"))));
        check_equivalent(project_nodes(intersect(token("test"), token("test"))));
    }
}
