//! Algebra expressions (Section 2.3.1).

use crate::error::AlgebraError;
use ftsl_predicates::{PredicateId, PredicateRegistry};
use std::fmt;

/// A full-text algebra expression.
#[derive(Clone, PartialEq, Eq)]
pub enum AlgExpr {
    /// The `SearchContext` relation: one arity-0 tuple per context node.
    SearchContext,
    /// The `HasPos` relation: one arity-1 tuple per (node, position).
    HasPos,
    /// `R_token`: one arity-1 tuple per (node, position-of-token).
    TokenRel(String),
    /// `π_{CNode, cols}` — columns may be reordered; `CNode` is implicit.
    Project(Box<AlgExpr>, Vec<usize>),
    /// `⋈` — equi-join on `CNode`, cartesian product of positions.
    Join(Box<AlgExpr>, Box<AlgExpr>),
    /// `σ_pred(cols, consts)`.
    Select {
        /// Input expression.
        input: Box<AlgExpr>,
        /// Which registered predicate to apply.
        pred: PredicateId,
        /// Column indices fed to the predicate, in argument order.
        cols: Vec<usize>,
        /// Constant arguments.
        consts: Vec<i64>,
    },
    /// `∪`.
    Union(Box<AlgExpr>, Box<AlgExpr>),
    /// `∩`.
    Intersect(Box<AlgExpr>, Box<AlgExpr>),
    /// `−`.
    Difference(Box<AlgExpr>, Box<AlgExpr>),
}

impl AlgExpr {
    /// Compute the output arity, validating column references and set-op
    /// arity agreement along the way.
    pub fn arity(&self, registry: &PredicateRegistry) -> Result<usize, AlgebraError> {
        match self {
            AlgExpr::SearchContext => Ok(0),
            AlgExpr::HasPos | AlgExpr::TokenRel(_) => Ok(1),
            AlgExpr::Project(input, cols) => {
                let a = input.arity(registry)?;
                for &c in cols {
                    if c >= a {
                        return Err(AlgebraError::ColumnOutOfRange { col: c, arity: a });
                    }
                }
                Ok(cols.len())
            }
            AlgExpr::Join(l, r) => Ok(l.arity(registry)? + r.arity(registry)?),
            AlgExpr::Select {
                input,
                pred,
                cols,
                consts,
            } => {
                let a = input.arity(registry)?;
                for &c in cols {
                    if c >= a {
                        return Err(AlgebraError::ColumnOutOfRange { col: c, arity: a });
                    }
                }
                if pred.index() >= registry.len() {
                    return Err(AlgebraError::UnknownPredicate(pred.0));
                }
                let p = registry.get(*pred);
                if cols.len() != p.arity() || consts.len() != p.num_consts() {
                    return Err(AlgebraError::BadPredicateApplication(format!(
                        "{} applied to {} columns / {} consts (expects {} / {})",
                        p.name(),
                        cols.len(),
                        consts.len(),
                        p.arity(),
                        p.num_consts()
                    )));
                }
                Ok(a)
            }
            AlgExpr::Union(l, r) | AlgExpr::Intersect(l, r) | AlgExpr::Difference(l, r) => {
                let (la, ra) = (l.arity(registry)?, r.arity(registry)?);
                if la != ra {
                    let op = match self {
                        AlgExpr::Union(..) => "union",
                        AlgExpr::Intersect(..) => "intersect",
                        _ => "difference",
                    };
                    return Err(AlgebraError::ArityMismatch {
                        op,
                        left: la,
                        right: ra,
                    });
                }
                Ok(la)
            }
        }
    }

    /// Number of operator nodes (for complexity accounting and tests).
    pub fn size(&self) -> usize {
        match self {
            AlgExpr::SearchContext | AlgExpr::HasPos | AlgExpr::TokenRel(_) => 1,
            AlgExpr::Project(e, _) | AlgExpr::Select { input: e, .. } => 1 + e.size(),
            AlgExpr::Join(a, b)
            | AlgExpr::Union(a, b)
            | AlgExpr::Intersect(a, b)
            | AlgExpr::Difference(a, b) => 1 + a.size() + b.size(),
        }
    }

    /// Render an operator-tree view (used by the Figure 4 example).
    pub fn render_tree(&self, registry: &PredicateRegistry) -> String {
        let mut out = String::new();
        self.render_into(registry, 0, &mut out);
        out
    }

    fn render_into(&self, registry: &PredicateRegistry, depth: usize, out: &mut String) {
        use std::fmt::Write;
        let pad = "  ".repeat(depth);
        match self {
            AlgExpr::SearchContext => writeln!(out, "{pad}search_context").unwrap(),
            AlgExpr::HasPos => writeln!(out, "{pad}scan (ANY)").unwrap(),
            AlgExpr::TokenRel(t) => writeln!(out, "{pad}scan (\"{t}\")").unwrap(),
            AlgExpr::Project(e, cols) => {
                writeln!(out, "{pad}project (CNode, {cols:?})").unwrap();
                e.render_into(registry, depth + 1, out);
            }
            AlgExpr::Join(a, b) => {
                writeln!(out, "{pad}join").unwrap();
                a.render_into(registry, depth + 1, out);
                b.render_into(registry, depth + 1, out);
            }
            AlgExpr::Select {
                input,
                pred,
                cols,
                consts,
            } => {
                let name = registry.get(*pred).name();
                writeln!(out, "{pad}select {name}({cols:?}, {consts:?})").unwrap();
                input.render_into(registry, depth + 1, out);
            }
            AlgExpr::Union(a, b) => {
                writeln!(out, "{pad}union").unwrap();
                a.render_into(registry, depth + 1, out);
                b.render_into(registry, depth + 1, out);
            }
            AlgExpr::Intersect(a, b) => {
                writeln!(out, "{pad}intersect").unwrap();
                a.render_into(registry, depth + 1, out);
                b.render_into(registry, depth + 1, out);
            }
            AlgExpr::Difference(a, b) => {
                writeln!(out, "{pad}difference").unwrap();
                a.render_into(registry, depth + 1, out);
                b.render_into(registry, depth + 1, out);
            }
        }
    }
}

impl fmt::Debug for AlgExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgExpr::SearchContext => write!(f, "SearchContext"),
            AlgExpr::HasPos => write!(f, "HasPos"),
            AlgExpr::TokenRel(t) => write!(f, "R_{t}"),
            AlgExpr::Project(e, cols) => write!(f, "π{cols:?}({e:?})"),
            AlgExpr::Join(a, b) => write!(f, "({a:?} ⋈ {b:?})"),
            AlgExpr::Select {
                input,
                pred,
                cols,
                consts,
            } => {
                write!(f, "σ{pred:?}{cols:?}{consts:?}({input:?})")
            }
            AlgExpr::Union(a, b) => write!(f, "({a:?} ∪ {b:?})"),
            AlgExpr::Intersect(a, b) => write!(f, "({a:?} ∩ {b:?})"),
            AlgExpr::Difference(a, b) => write!(f, "({a:?} − {b:?})"),
        }
    }
}

/// Convenience constructors mirroring the paper's notation.
pub mod ops {
    use super::AlgExpr;
    use ftsl_predicates::PredicateId;

    /// `R_token`.
    pub fn token(t: &str) -> AlgExpr {
        AlgExpr::TokenRel(t.to_lowercase())
    }

    /// `π_{CNode, cols}(e)`.
    pub fn project(e: AlgExpr, cols: &[usize]) -> AlgExpr {
        AlgExpr::Project(Box::new(e), cols.to_vec())
    }

    /// `π_{CNode}(e)` — project away all position columns.
    pub fn project_nodes(e: AlgExpr) -> AlgExpr {
        AlgExpr::Project(Box::new(e), vec![])
    }

    /// `a ⋈ b`.
    pub fn join(a: AlgExpr, b: AlgExpr) -> AlgExpr {
        AlgExpr::Join(Box::new(a), Box::new(b))
    }

    /// `σ_pred(cols, consts)(e)`.
    pub fn select(e: AlgExpr, pred: PredicateId, cols: &[usize], consts: &[i64]) -> AlgExpr {
        AlgExpr::Select {
            input: Box::new(e),
            pred,
            cols: cols.to_vec(),
            consts: consts.to_vec(),
        }
    }

    /// `a ∪ b`.
    pub fn union(a: AlgExpr, b: AlgExpr) -> AlgExpr {
        AlgExpr::Union(Box::new(a), Box::new(b))
    }

    /// `a ∩ b`.
    pub fn intersect(a: AlgExpr, b: AlgExpr) -> AlgExpr {
        AlgExpr::Intersect(Box::new(a), Box::new(b))
    }

    /// `a − b`.
    pub fn difference(a: AlgExpr, b: AlgExpr) -> AlgExpr {
        AlgExpr::Difference(Box::new(a), Box::new(b))
    }
}

#[cfg(test)]
mod tests {
    use super::ops::*;
    use super::*;

    #[test]
    fn arity_of_paper_example() {
        // π_CNode(R_test ⋈ R_usability)
        let reg = PredicateRegistry::with_builtins();
        let e = project_nodes(join(token("test"), token("usability")));
        assert_eq!(e.arity(&reg), Ok(0));
    }

    #[test]
    fn arity_checks_catch_bad_projections() {
        let reg = PredicateRegistry::with_builtins();
        let e = project(token("a"), &[2]);
        assert_eq!(
            e.arity(&reg),
            Err(AlgebraError::ColumnOutOfRange { col: 2, arity: 1 })
        );
    }

    #[test]
    fn arity_checks_catch_set_op_mismatch() {
        let reg = PredicateRegistry::with_builtins();
        let e = union(token("a"), join(token("a"), token("b")));
        assert!(matches!(
            e.arity(&reg),
            Err(AlgebraError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn arity_checks_predicate_signature() {
        let reg = PredicateRegistry::with_builtins();
        let distance = reg.lookup("distance").unwrap();
        let bad = select(join(token("a"), token("b")), distance, &[0], &[5]);
        assert!(matches!(
            bad.arity(&reg),
            Err(AlgebraError::BadPredicateApplication(_))
        ));
        let good = select(join(token("a"), token("b")), distance, &[0, 1], &[5]);
        assert_eq!(good.arity(&reg), Ok(2));
    }

    #[test]
    fn render_tree_matches_figure4_shape() {
        let reg = PredicateRegistry::with_builtins();
        let distance = reg.lookup("distance").unwrap();
        let samepara = reg.lookup("samepara").unwrap();
        let plan = project_nodes(select(
            select(
                join(token("usability"), token("software")),
                samepara,
                &[0, 1],
                &[],
            ),
            distance,
            &[0, 1],
            &[5],
        ));
        let tree = plan.render_tree(&reg);
        assert!(tree.contains("scan (\"usability\")"));
        assert!(tree.contains("select distance"));
        assert!(tree.contains("join"));
        assert!(tree.starts_with("project"));
    }
}
