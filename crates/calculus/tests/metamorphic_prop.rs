//! Metamorphic laws of the reference interpreter: the classical first-order
//! equivalences must hold on every corpus. These pin the semantics that all
//! engines are differentially tested against.

use ftsl_calculus::ast::{QueryExpr, VarId};
use ftsl_calculus::interp::Interpreter;
use ftsl_calculus::CalcQuery;
use ftsl_model::Corpus;
use ftsl_predicates::PredicateRegistry;
use proptest::prelude::*;

const VOCAB: [&str; 3] = ["a", "b", "c"];

fn arb_corpus() -> impl Strategy<Value = Corpus> {
    proptest::collection::vec(proptest::collection::vec(0..VOCAB.len(), 0..8), 1..6).prop_map(
        |docs| {
            let texts: Vec<String> = docs
                .into_iter()
                .map(|toks| {
                    toks.into_iter()
                        .map(|t| VOCAB[t])
                        .collect::<Vec<_>>()
                        .join(" ")
                })
                .collect();
            Corpus::from_texts(&texts)
        },
    )
}

fn arb_expr(depth: u32, scope: Vec<VarId>) -> BoxedStrategy<QueryExpr> {
    let atom: Option<BoxedStrategy<QueryExpr>> = if scope.is_empty() {
        None
    } else {
        let scope = scope.clone();
        Some(
            (0..scope.len(), 0..VOCAB.len())
                .prop_map(move |(v, t)| QueryExpr::HasToken(scope[v], VOCAB[t].to_string()))
                .boxed(),
        )
    };
    if depth == 0 {
        return match atom {
            Some(a) => a,
            None => Just(QueryExpr::Exists(
                VarId(50),
                Box::new(QueryExpr::HasToken(VarId(50), "a".to_string())),
            ))
            .boxed(),
        };
    }
    let fresh = VarId(50 + depth);
    let mut inner = scope.clone();
    inner.push(fresh);
    let sub = arb_expr(depth - 1, scope);
    let sub_q = arb_expr(depth - 1, inner);
    let mut opts: Vec<BoxedStrategy<QueryExpr>> = vec![
        (sub.clone(), sub.clone())
            .prop_map(|(a, b)| QueryExpr::And(Box::new(a), Box::new(b)))
            .boxed(),
        (sub.clone(), sub.clone())
            .prop_map(|(a, b)| QueryExpr::Or(Box::new(a), Box::new(b)))
            .boxed(),
        sub.clone()
            .prop_map(|a| QueryExpr::Not(Box::new(a)))
            .boxed(),
        sub_q
            .clone()
            .prop_map(move |a| QueryExpr::Exists(fresh, Box::new(a)))
            .boxed(),
        sub_q
            .prop_map(move |a| QueryExpr::Forall(fresh, Box::new(a)))
            .boxed(),
    ];
    if let Some(a) = atom {
        opts.push(a);
    }
    proptest::strategy::Union::new(opts).boxed()
}

fn eval(corpus: &Corpus, expr: QueryExpr) -> Vec<u32> {
    let reg = PredicateRegistry::with_builtins();
    Interpreter::new(corpus, &reg)
        .eval_query(&CalcQuery::new(expr))
        .into_iter()
        .map(|n| n.0)
        .collect()
}

fn not(e: QueryExpr) -> QueryExpr {
    QueryExpr::Not(Box::new(e))
}

/// Property-case count: `FTSL_PROPTEST_CASES` raises it for the scheduled
/// deep-fuzz CI job; the default keeps PR builds quick.
fn prop_cases() -> u32 {
    std::env::var("FTSL_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(96)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(prop_cases()))]

    #[test]
    fn double_negation(e in arb_expr(2, vec![]), corpus in arb_corpus()) {
        prop_assert_eq!(eval(&corpus, e.clone()), eval(&corpus, not(not(e))));
    }

    #[test]
    fn de_morgan_and(
        a in arb_expr(2, vec![]),
        b in arb_expr(2, vec![]),
        corpus in arb_corpus(),
    ) {
        let lhs = not(QueryExpr::And(Box::new(a.clone()), Box::new(b.clone())));
        let rhs = QueryExpr::Or(Box::new(not(a)), Box::new(not(b)));
        prop_assert_eq!(eval(&corpus, lhs), eval(&corpus, rhs));
    }

    #[test]
    fn de_morgan_or(
        a in arb_expr(2, vec![]),
        b in arb_expr(2, vec![]),
        corpus in arb_corpus(),
    ) {
        let lhs = not(QueryExpr::Or(Box::new(a.clone()), Box::new(b.clone())));
        let rhs = QueryExpr::And(Box::new(not(a)), Box::new(not(b)));
        prop_assert_eq!(eval(&corpus, lhs), eval(&corpus, rhs));
    }

    #[test]
    fn quantifier_duality(e in arb_expr(2, vec![VarId(99)]), corpus in arb_corpus()) {
        // ∀p e  ≡  ¬∃p ¬e (with the paper's hasPos-guarded quantifier shape).
        let v = VarId(99);
        let forall = QueryExpr::Forall(v, Box::new(e.clone()));
        let dual = not(QueryExpr::Exists(v, Box::new(not(e))));
        prop_assert_eq!(eval(&corpus, forall), eval(&corpus, dual));
    }

    #[test]
    fn conjunction_is_intersection(
        a in arb_expr(2, vec![]),
        b in arb_expr(2, vec![]),
        corpus in arb_corpus(),
    ) {
        let both = eval(&corpus, QueryExpr::And(Box::new(a.clone()), Box::new(b.clone())));
        let ra = eval(&corpus, a);
        let rb = eval(&corpus, b);
        let expected: Vec<u32> =
            ra.iter().copied().filter(|n| rb.contains(n)).collect();
        prop_assert_eq!(both, expected);
    }
}
