//! Property test for Theorem 4: over a finite alphabet, every restricted
//! calculus expression (Preds = ∅) is equivalent to its BOOL translation.
//!
//! Random closed expressions are normalized, translated to BOOL, lowered
//! back to the calculus via BOOL's semantics, and both are evaluated with
//! the reference interpreter on random corpora drawn from the alphabet.

use ftsl_calculus::ast::{QueryExpr, VarId};
use ftsl_calculus::bool_complete::to_bool;
use ftsl_calculus::interp::Interpreter;
use ftsl_calculus::normalize::normalize;
use ftsl_calculus::CalcQuery;
use ftsl_model::Corpus;
use ftsl_predicates::PredicateRegistry;
use proptest::prelude::*;

const ALPHABET: [&str; 3] = ["a", "b", "c"];

/// A closed restricted expression: quantifiers over `depth` variables with
/// bodies mixing atoms on any in-scope variable.
fn arb_expr(depth: u32, scope: Vec<VarId>) -> BoxedStrategy<QueryExpr> {
    let atom = {
        let scope = scope.clone();
        if scope.is_empty() {
            // No variable in scope: force a quantifier below.
            None
        } else {
            let scope2 = scope.clone();
            Some(
                (0..scope.len(), 0..ALPHABET.len(), any::<bool>())
                    .prop_map(move |(vi, ti, use_tok)| {
                        let v = scope2[vi];
                        if use_tok {
                            QueryExpr::HasToken(v, ALPHABET[ti].to_string())
                        } else {
                            QueryExpr::HasPos(v)
                        }
                    })
                    .boxed(),
            )
        }
    };

    if depth == 0 {
        // Leaf: an atom if possible; otherwise a minimal quantified atom.
        return match atom {
            Some(a) => a,
            None => Just(QueryExpr::Exists(
                VarId(100),
                Box::new(QueryExpr::HasToken(VarId(100), "a".to_string())),
            ))
            .boxed(),
        };
    }

    let fresh = VarId(100 + depth);
    let mut inner_scope = scope.clone();
    inner_scope.push(fresh);

    let sub = arb_expr(depth - 1, scope.clone());
    let sub_q = arb_expr(depth - 1, inner_scope);

    let mut options: Vec<BoxedStrategy<QueryExpr>> = vec![
        (sub.clone(), sub.clone())
            .prop_map(|(a, b)| QueryExpr::And(Box::new(a), Box::new(b)))
            .boxed(),
        (sub.clone(), sub.clone())
            .prop_map(|(a, b)| QueryExpr::Or(Box::new(a), Box::new(b)))
            .boxed(),
        sub.clone()
            .prop_map(|a| QueryExpr::Not(Box::new(a)))
            .boxed(),
        sub_q
            .clone()
            .prop_map(move |a| QueryExpr::Exists(fresh, Box::new(a)))
            .boxed(),
        sub_q
            .prop_map(move |a| QueryExpr::Forall(fresh, Box::new(a)))
            .boxed(),
    ];
    if let Some(a) = atom {
        options.push(a);
    }
    proptest::strategy::Union::new(options).boxed()
}

fn arb_corpus() -> impl Strategy<Value = Corpus> {
    proptest::collection::vec(proptest::collection::vec(0..ALPHABET.len(), 0..6), 1..6).prop_map(
        |docs| {
            let texts: Vec<String> = docs
                .into_iter()
                .map(|toks| {
                    toks.into_iter()
                        .map(|t| ALPHABET[t])
                        .collect::<Vec<_>>()
                        .join(" ")
                })
                .collect();
            Corpus::from_texts(&texts)
        },
    )
}

/// Property-case count: `FTSL_PROPTEST_CASES` raises it for the scheduled
/// deep-fuzz CI job; the default keeps PR builds quick.
fn prop_cases() -> u32 {
    std::env::var("FTSL_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(128)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(prop_cases()))]

    #[test]
    fn theorem4_bool_translation_is_equivalent(
        expr in arb_expr(3, vec![]),
        corpus in arb_corpus(),
    ) {
        let reg = PredicateRegistry::with_builtins();
        let interp = Interpreter::new(&corpus, &reg);
        let alphabet: Vec<String> = ALPHABET.iter().map(|s| s.to_string()).collect();

        let prop = normalize(&expr).expect("restricted expressions normalize");
        let bool_q = to_bool(&prop, &alphabet);
        let mut next = 10_000;
        let back = bool_q.to_calculus(&mut next);

        let lhs = interp.eval_query(&CalcQuery::new(expr.clone()));
        let rhs = interp.eval_query(&CalcQuery::new(back));
        prop_assert_eq!(lhs, rhs, "diverged for {:?} => {}", expr, bool_q.render());
    }

    #[test]
    fn global_dnf_preserves_semantics(
        expr in arb_expr(2, vec![]),
        corpus in arb_corpus(),
    ) {
        // Rebuild a Prop from its global DNF and check equivalence through
        // the BOOL translation path.
        use ftsl_calculus::normalize::Prop;
        let reg = PredicateRegistry::with_builtins();
        let interp = Interpreter::new(&corpus, &reg);
        let alphabet: Vec<String> = ALPHABET.iter().map(|s| s.to_string()).collect();

        let prop = normalize(&expr).expect("normalizable");
        let dnf = prop.to_dnf();
        let rebuilt = dnf
            .into_iter()
            .map(|conj| {
                conj.into_iter()
                    .map(|(fact, sign)| {
                        let atom = Prop::Atom(fact);
                        if sign { atom } else { Prop::Not(Box::new(atom)) }
                    })
                    .reduce(|a, b| Prop::And(Box::new(a), Box::new(b)))
                    .unwrap_or(Prop::True)
            })
            .reduce(|a, b| Prop::Or(Box::new(a), Box::new(b)))
            .unwrap_or(Prop::False);

        let mut next = 10_000;
        let q1 = to_bool(&prop, &alphabet).to_calculus(&mut next);
        let q2 = to_bool(&rebuilt, &alphabet).to_calculus(&mut next);
        let lhs = interp.eval_query(&CalcQuery::new(q1));
        let rhs = interp.eval_query(&CalcQuery::new(q2));
        prop_assert_eq!(lhs, rhs);
    }
}
