//! The six-step normalization of Theorem 4's proof (Appendix A).
//!
//! For the restricted calculus (`Preds = ∅` — only `hasPos`/`hasToken` atoms,
//! Boolean operations and quantifiers), every query expression is equivalent
//! to a propositional combination of **simple quantified facts** of the form
//! `∃p (hasPos(n,p) ∧ ⋀ hasToken(p,tᵢ) ∧ ⋀ ¬hasToken(p,tⱼ))`.
//!
//! The paper's steps map onto this implementation as follows:
//!
//! 1. *Sink negations* — NNF conversion inside `eliminate_innermost`;
//! 2. *Group* — the partition of each DNF conjunct into literals on the
//!    quantified variable vs. everything else (sound because, with
//!    `Preds = ∅`, every atom mentions at most one position variable);
//! 3. *Remove universal quantification* — the `Forall` case of `to_nexpr`;
//! 4. *Local DNF* / 5. *Split* — the DNF + per-disjunct split in
//!    `eliminate_innermost`;
//! 6. *Global DNF* — available as [`Prop::to_dnf`]; the BOOL translation
//!    itself is compositional and does not require it.

use crate::ast::{QueryExpr, VarId};
use crate::vars::uniquify;
use std::collections::BTreeSet;
use std::fmt;

/// A simple quantified fact after simplification ("one token per position").
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Fact {
    /// `∃p hasToken(p, t)` — the node contains `t`.
    Token(String),
    /// `∃p ⋀ ¬hasToken(p, tⱼ)` — the node contains a token outside the set.
    Complement(BTreeSet<String>),
    /// `∃p hasPos(p)` — the node is non-empty (`ANY`).
    Any,
    /// An unsatisfiable fact (e.g. one position holding two distinct
    /// tokens).
    Never,
}

/// Propositional formula over [`Fact`]s — the normal form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Prop {
    /// Constant true.
    True,
    /// Constant false.
    False,
    /// A quantified fact.
    Atom(Fact),
    /// Negation.
    Not(Box<Prop>),
    /// Conjunction.
    And(Box<Prop>, Box<Prop>),
    /// Disjunction.
    Or(Box<Prop>, Box<Prop>),
}

impl Prop {
    /// Global DNF (step 6): disjuncts of signed facts. `true` sign means the
    /// fact holds. Contradictory and duplicate literals are removed; an
    /// empty outer vector means `false`, a disjunct with no literals means
    /// `true`.
    pub fn to_dnf(&self) -> Vec<Vec<(Fact, bool)>> {
        match self {
            Prop::True => vec![vec![]],
            Prop::False => vec![],
            Prop::Atom(fact) => vec![vec![(fact.clone(), true)]],
            Prop::Not(inner) => {
                // Complement the inner DNF via the dual CNF.
                let dnf = inner.to_dnf();
                negate_dnf(&dnf)
            }
            Prop::And(a, b) => {
                let left = a.to_dnf();
                let right = b.to_dnf();
                let mut out = Vec::new();
                for lc in &left {
                    for rc in &right {
                        if let Some(merged) = merge_conjuncts(lc, rc) {
                            out.push(merged);
                        }
                    }
                }
                out
            }
            Prop::Or(a, b) => {
                let mut out = a.to_dnf();
                out.extend(b.to_dnf());
                out
            }
        }
    }
}

fn negate_dnf(dnf: &[Vec<(Fact, bool)>]) -> Vec<Vec<(Fact, bool)>> {
    // ¬(C1 ∨ ... ∨ Ck) = ⋀ ¬Ci; expand the conjunction of clause-negations.
    let mut acc: Vec<Vec<(Fact, bool)>> = vec![vec![]];
    for conj in dnf {
        let mut next = Vec::new();
        for partial in &acc {
            for (fact, sign) in conj {
                if let Some(merged) = merge_conjuncts(partial, &[(fact.clone(), !sign)]) {
                    next.push(merged);
                }
            }
        }
        acc = next;
    }
    acc
}

fn merge_conjuncts(a: &[(Fact, bool)], b: &[(Fact, bool)]) -> Option<Vec<(Fact, bool)>> {
    let mut out = a.to_vec();
    for (fact, sign) in b {
        if out.iter().any(|(f, s)| f == fact && s != sign) {
            return None; // contradictory
        }
        if !out.iter().any(|(f, s)| f == fact && s == sign) {
            out.push((fact.clone(), *sign));
        }
    }
    out.sort();
    Some(out)
}

/// Errors from normalization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NormalizeError {
    /// The expression uses a position predicate — Theorem 4 covers
    /// `Preds = ∅` only.
    PredicateNotAllowed,
    /// The expression has a free position variable.
    FreeVariable(u32),
}

impl fmt::Display for NormalizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NormalizeError::PredicateNotAllowed => {
                write!(f, "normalization requires Preds = ∅ (Theorem 4)")
            }
            NormalizeError::FreeVariable(v) => write!(f, "free position variable p{v}"),
        }
    }
}

impl std::error::Error for NormalizeError {}

/// Internal working representation during quantifier elimination: the
/// calculus atoms plus already-eliminated facts as opaque propositions.
#[derive(Clone, Debug, PartialEq, Eq)]
enum NExpr {
    TokLit(VarId, String),
    PosLit(VarId),
    FactAtom(Fact),
    /// Constant true; only produced by future simplifications but handled
    /// everywhere for robustness.
    #[allow(dead_code)]
    True,
    False,
    Not(Box<NExpr>),
    And(Box<NExpr>, Box<NExpr>),
    Or(Box<NExpr>, Box<NExpr>),
    Exists(VarId, Box<NExpr>),
}

/// Normalize a restricted, closed query expression into the propositional
/// normal form over quantified facts.
pub fn normalize(expr: &QueryExpr) -> Result<Prop, NormalizeError> {
    let expr = uniquify(expr);
    let mut n = to_nexpr(&expr)?;
    // Steps 1-5, applied innermost-out until no quantifier remains.
    while contains_exists(&n) {
        n = eliminate_innermost(n);
    }
    to_prop(&n)
}

/// Step 3: `∀p (hasPos ⇒ X)` → `¬∃p (hasPos ∧ ¬X)`, plus the conversion to
/// the working representation.
fn to_nexpr(expr: &QueryExpr) -> Result<NExpr, NormalizeError> {
    Ok(match expr {
        QueryExpr::HasPos(v) => NExpr::PosLit(*v),
        QueryExpr::HasToken(v, t) => NExpr::TokLit(*v, t.clone()),
        QueryExpr::Pred { .. } => return Err(NormalizeError::PredicateNotAllowed),
        QueryExpr::Not(e) => NExpr::Not(Box::new(to_nexpr(e)?)),
        QueryExpr::And(a, b) => NExpr::And(Box::new(to_nexpr(a)?), Box::new(to_nexpr(b)?)),
        QueryExpr::Or(a, b) => NExpr::Or(Box::new(to_nexpr(a)?), Box::new(to_nexpr(b)?)),
        QueryExpr::Exists(v, e) => NExpr::Exists(*v, Box::new(to_nexpr(e)?)),
        QueryExpr::Forall(v, e) => NExpr::Not(Box::new(NExpr::Exists(
            *v,
            Box::new(NExpr::Not(Box::new(to_nexpr(e)?))),
        ))),
    })
}

fn contains_exists(n: &NExpr) -> bool {
    match n {
        NExpr::Exists(..) => true,
        NExpr::Not(e) => contains_exists(e),
        NExpr::And(a, b) | NExpr::Or(a, b) => contains_exists(a) || contains_exists(b),
        _ => false,
    }
}

/// Find one innermost `Exists` and replace it with its quantifier-free
/// equivalent.
fn eliminate_innermost(n: NExpr) -> NExpr {
    match n {
        NExpr::Exists(v, body) => {
            if contains_exists(&body) {
                NExpr::Exists(v, Box::new(eliminate_innermost(*body)))
            } else {
                eliminate_exists(v, *body)
            }
        }
        NExpr::Not(e) => NExpr::Not(Box::new(eliminate_innermost(*e))),
        NExpr::And(a, b) => {
            if contains_exists(&a) {
                NExpr::And(Box::new(eliminate_innermost(*a)), b)
            } else {
                NExpr::And(a, Box::new(eliminate_innermost(*b)))
            }
        }
        NExpr::Or(a, b) => {
            if contains_exists(&a) {
                NExpr::Or(Box::new(eliminate_innermost(*a)), b)
            } else {
                NExpr::Or(a, Box::new(eliminate_innermost(*b)))
            }
        }
        other => other,
    }
}

/// A signed literal in the local DNF.
type SignedLit = (NExpr, bool);

/// Eliminate `∃v (hasPos ∧ body)` where `body` is quantifier-free:
/// steps 1 (sink negations), 2 (group), 4 (local DNF), 5 (split).
fn eliminate_exists(v: VarId, body: NExpr) -> NExpr {
    let dnf = dnf_literals(&body);
    let mut disjuncts: Vec<NExpr> = Vec::new();
    'conj: for conjunct in dnf {
        let mut pos_tokens: BTreeSet<String> = BTreeSet::new();
        let mut neg_tokens: BTreeSet<String> = BTreeSet::new();
        let mut others: Vec<NExpr> = Vec::new();
        for (atom, sign) in conjunct {
            match atom {
                NExpr::TokLit(u, t) if u == v => {
                    if sign {
                        pos_tokens.insert(t);
                    } else {
                        neg_tokens.insert(t);
                    }
                }
                NExpr::PosLit(u) if u == v => {
                    // hasPos(v) is true for every binding of v; its negation
                    // makes the conjunct unsatisfiable.
                    if !sign {
                        continue 'conj;
                    }
                }
                other => {
                    others.push(if sign {
                        other
                    } else {
                        NExpr::Not(Box::new(other))
                    });
                }
            }
        }
        let fact = simplify_fact(pos_tokens, neg_tokens);
        let mut out = NExpr::FactAtom(fact);
        for o in others {
            out = NExpr::And(Box::new(out), Box::new(o));
        }
        disjuncts.push(out);
    }
    disjuncts
        .into_iter()
        .reduce(|a, b| NExpr::Or(Box::new(a), Box::new(b)))
        .unwrap_or(NExpr::False)
}

/// Convert a quantifier-free expression to DNF over its atoms, dropping
/// contradictory conjuncts.
fn dnf_literals(n: &NExpr) -> Vec<Vec<SignedLit>> {
    fn go(n: &NExpr, sign: bool) -> Vec<Vec<SignedLit>> {
        match (n, sign) {
            (NExpr::True, true) | (NExpr::False, false) => vec![vec![]],
            (NExpr::True, false) | (NExpr::False, true) => vec![],
            (NExpr::Not(e), s) => go(e, !s),
            (NExpr::And(a, b), true) | (NExpr::Or(a, b), false) => {
                let left = go(a, sign);
                let right = go(b, sign);
                let mut out = Vec::new();
                for lc in &left {
                    for rc in &right {
                        if let Some(m) = merge_lits(lc, rc) {
                            out.push(m);
                        }
                    }
                }
                out
            }
            (NExpr::Or(a, b), true) | (NExpr::And(a, b), false) => {
                let mut out = go(a, sign);
                out.extend(go(b, sign));
                out
            }
            (atom, s) => vec![vec![(atom.clone(), s)]],
        }
    }
    go(n, true)
}

fn merge_lits(a: &[SignedLit], b: &[SignedLit]) -> Option<Vec<SignedLit>> {
    let mut out = a.to_vec();
    for (atom, sign) in b {
        if out.iter().any(|(x, s)| x == atom && s != sign) {
            return None;
        }
        if !out.iter().any(|(x, s)| x == atom && s == sign) {
            out.push((atom.clone(), *sign));
        }
    }
    Some(out)
}

/// "One token per position": collapse a literal set on one variable into a
/// [`Fact`] (the case analysis of Theorem 4's proof).
fn simplify_fact(pos: BTreeSet<String>, neg: BTreeSet<String>) -> Fact {
    match pos.len() {
        0 => {
            if neg.is_empty() {
                Fact::Any
            } else {
                Fact::Complement(neg)
            }
        }
        1 => {
            let t = pos.into_iter().next().unwrap();
            if neg.contains(&t) {
                Fact::Never
            } else {
                Fact::Token(t)
            }
        }
        _ => Fact::Never,
    }
}

fn to_prop(n: &NExpr) -> Result<Prop, NormalizeError> {
    Ok(match n {
        NExpr::True => Prop::True,
        NExpr::False => Prop::False,
        NExpr::FactAtom(Fact::Never) => Prop::False,
        NExpr::FactAtom(f) => Prop::Atom(f.clone()),
        NExpr::Not(e) => Prop::Not(Box::new(to_prop(e)?)),
        NExpr::And(a, b) => Prop::And(Box::new(to_prop(a)?), Box::new(to_prop(b)?)),
        NExpr::Or(a, b) => Prop::Or(Box::new(to_prop(a)?), Box::new(to_prop(b)?)),
        NExpr::TokLit(v, _) | NExpr::PosLit(v) => return Err(NormalizeError::FreeVariable(v.0)),
        NExpr::Exists(..) => unreachable!("quantifiers eliminated before to_prop"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;

    fn tok_fact(t: &str) -> Prop {
        Prop::Atom(Fact::Token(t.to_string()))
    }

    #[test]
    fn simple_contains_normalizes_to_token_fact() {
        let p = normalize(&contains(1, "test")).unwrap();
        assert_eq!(p, tok_fact("test"));
    }

    #[test]
    fn conjunction_of_contains() {
        let p = normalize(&and(contains(1, "a"), contains(2, "b"))).unwrap();
        assert_eq!(
            p,
            Prop::And(Box::new(tok_fact("a")), Box::new(tok_fact("b")))
        );
    }

    #[test]
    fn one_token_per_position_collapses_to_false() {
        // ∃p (hasToken(p,a) ∧ hasToken(p,b)) is unsatisfiable.
        let e = exists(1, and(has_token(1, "a"), has_token(1, "b")));
        assert_eq!(normalize(&e).unwrap(), Prop::False);
    }

    #[test]
    fn negated_token_becomes_complement_fact() {
        // Theorem 3's witness: ∃p ¬hasToken(p, t1).
        let e = exists(1, not(has_token(1, "t1")));
        let p = normalize(&e).unwrap();
        let mut set = BTreeSet::new();
        set.insert("t1".to_string());
        assert_eq!(p, Prop::Atom(Fact::Complement(set)));
    }

    #[test]
    fn forall_becomes_negated_complement() {
        // ∀p hasToken(p, t): "all tokens are t" = ¬∃p ¬hasToken(p,t).
        let e = forall(1, has_token(1, "t"));
        let p = normalize(&e).unwrap();
        let mut set = BTreeSet::new();
        set.insert("t".to_string());
        assert_eq!(p, Prop::Not(Box::new(Prop::Atom(Fact::Complement(set)))));
    }

    #[test]
    fn nested_quantifiers_group_correctly() {
        // ∃u (hasToken(u,a) ∧ ∃v (hasToken(v,b))) — inner fact is closed and
        // floats out of the outer quantifier.
        let e = exists(1, and(has_token(1, "a"), exists(2, has_token(2, "b"))));
        let p = normalize(&e).unwrap();
        // Expect (b-fact) ∧ (a-fact) in some association.
        let dnf = p.to_dnf();
        assert_eq!(dnf.len(), 1);
        let lits: Vec<(Fact, bool)> = dnf[0].clone();
        assert!(lits.contains(&(Fact::Token("a".into()), true)));
        assert!(lits.contains(&(Fact::Token("b".into()), true)));
        assert_eq!(lits.len(), 2);
    }

    #[test]
    fn predicate_use_is_rejected() {
        let reg = ftsl_predicates::PredicateRegistry::with_builtins();
        let distance = reg.lookup("distance").unwrap();
        let e = exists(1, exists(2, pred(distance, &[1, 2], &[3])));
        assert_eq!(normalize(&e), Err(NormalizeError::PredicateNotAllowed));
    }

    #[test]
    fn free_variable_is_rejected() {
        let e = has_token(1, "a");
        assert_eq!(normalize(&e), Err(NormalizeError::FreeVariable(1)));
    }

    #[test]
    fn any_fact_from_bare_exists() {
        let e = exists(1, has_pos(1));
        assert_eq!(normalize(&e).unwrap(), Prop::Atom(Fact::Any));
    }

    #[test]
    fn negated_has_pos_under_its_own_binder_is_false() {
        let e = exists(1, not(has_pos(1)));
        assert_eq!(normalize(&e).unwrap(), Prop::False);
    }

    #[test]
    fn dnf_of_disjunction() {
        let p = Prop::Or(Box::new(tok_fact("a")), Box::new(tok_fact("b")));
        let dnf = p.to_dnf();
        assert_eq!(dnf.len(), 2);
    }

    #[test]
    fn dnf_negation_flips_signs() {
        let p = Prop::Not(Box::new(Prop::And(
            Box::new(tok_fact("a")),
            Box::new(tok_fact("b")),
        )));
        let dnf = p.to_dnf();
        // ¬(a ∧ b) = ¬a ∨ ¬b
        assert_eq!(dnf.len(), 2);
        assert!(dnf.iter().all(|c| c.len() == 1 && !c[0].1));
    }
}
