//! Variable analysis: free variables, renaming, uniquification.

use crate::ast::{QueryExpr, VarId};
use std::collections::{BTreeSet, HashMap};

/// The free position variables of an expression, in id order.
pub fn free_vars(expr: &QueryExpr) -> BTreeSet<VarId> {
    let mut out = BTreeSet::new();
    collect_free(expr, &mut Vec::new(), &mut out);
    out
}

fn collect_free(expr: &QueryExpr, bound: &mut Vec<VarId>, out: &mut BTreeSet<VarId>) {
    match expr {
        QueryExpr::HasPos(v) => {
            if !bound.contains(v) {
                out.insert(*v);
            }
        }
        QueryExpr::HasToken(v, _) => {
            if !bound.contains(v) {
                out.insert(*v);
            }
        }
        QueryExpr::Pred { vars, .. } => {
            for v in vars {
                if !bound.contains(v) {
                    out.insert(*v);
                }
            }
        }
        QueryExpr::Not(e) => collect_free(e, bound, out),
        QueryExpr::And(a, b) | QueryExpr::Or(a, b) => {
            collect_free(a, bound, out);
            collect_free(b, bound, out);
        }
        QueryExpr::Exists(v, e) | QueryExpr::Forall(v, e) => {
            bound.push(*v);
            collect_free(e, bound, out);
            bound.pop();
        }
    }
}

/// The largest variable id mentioned anywhere (bound or free), or `None`.
pub fn max_var(expr: &QueryExpr) -> Option<VarId> {
    match expr {
        QueryExpr::HasPos(v) | QueryExpr::HasToken(v, _) => Some(*v),
        QueryExpr::Pred { vars, .. } => vars.iter().copied().max(),
        QueryExpr::Not(e) => max_var(e),
        QueryExpr::And(a, b) | QueryExpr::Or(a, b) => max_var(a).max(max_var(b)),
        QueryExpr::Exists(v, e) | QueryExpr::Forall(v, e) => Some(*v).max(max_var(e)),
    }
}

/// Rename every *bound* variable to a fresh id so that no two quantifiers
/// bind the same variable and no bound variable shadows a free one (the
/// proof of Theorem 4 assumes "every quantified variable in F has a unique
/// name").
pub fn uniquify(expr: &QueryExpr) -> QueryExpr {
    let mut next = max_var(expr).map_or(0, |v| v.0 + 1);
    rename(expr, &HashMap::new(), &mut next)
}

fn rename(expr: &QueryExpr, env: &HashMap<VarId, VarId>, next: &mut u32) -> QueryExpr {
    let map = |v: &VarId| env.get(v).copied().unwrap_or(*v);
    match expr {
        QueryExpr::HasPos(v) => QueryExpr::HasPos(map(v)),
        QueryExpr::HasToken(v, t) => QueryExpr::HasToken(map(v), t.clone()),
        QueryExpr::Pred { pred, vars, consts } => QueryExpr::Pred {
            pred: *pred,
            vars: vars.iter().map(map).collect(),
            consts: consts.clone(),
        },
        QueryExpr::Not(e) => QueryExpr::Not(Box::new(rename(e, env, next))),
        QueryExpr::And(a, b) => QueryExpr::And(
            Box::new(rename(a, env, next)),
            Box::new(rename(b, env, next)),
        ),
        QueryExpr::Or(a, b) => QueryExpr::Or(
            Box::new(rename(a, env, next)),
            Box::new(rename(b, env, next)),
        ),
        QueryExpr::Exists(v, e) => {
            let fresh = VarId(*next);
            *next += 1;
            let mut env2 = env.clone();
            env2.insert(*v, fresh);
            QueryExpr::Exists(fresh, Box::new(rename(e, &env2, next)))
        }
        QueryExpr::Forall(v, e) => {
            let fresh = VarId(*next);
            *next += 1;
            let mut env2 = env.clone();
            env2.insert(*v, fresh);
            QueryExpr::Forall(fresh, Box::new(rename(e, &env2, next)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;

    #[test]
    fn free_vars_respects_binding() {
        // ∃p1 (hasToken(p1,a) ∧ hasToken(p2,b)) — p2 free.
        let e = exists(1, and(has_token(1, "a"), has_token(2, "b")));
        let free: Vec<u32> = free_vars(&e).into_iter().map(|v| v.0).collect();
        assert_eq!(free, vec![2]);
    }

    #[test]
    fn closed_query_has_no_free_vars() {
        let e = exists(1, exists(2, and(has_token(1, "a"), has_token(2, "b"))));
        assert!(free_vars(&e).is_empty());
    }

    #[test]
    fn uniquify_separates_shadowed_binders() {
        // ∃p1(hasToken(p1,a) ∧ ∃p1(hasToken(p1,b))) — inner p1 shadows outer.
        let e = exists(1, and(has_token(1, "a"), exists(1, has_token(1, "b"))));
        let u = uniquify(&e);
        // After uniquification the two binders differ.
        if let QueryExpr::Exists(outer, body) = &u {
            if let QueryExpr::And(left, right) = body.as_ref() {
                if let (QueryExpr::HasToken(lv, _), QueryExpr::Exists(inner, ibody)) =
                    (left.as_ref(), right.as_ref())
                {
                    assert_eq!(lv, outer);
                    assert_ne!(inner, outer);
                    if let QueryExpr::HasToken(iv, _) = ibody.as_ref() {
                        assert_eq!(iv, inner);
                        return;
                    }
                }
            }
        }
        panic!("unexpected shape: {u:?}");
    }

    #[test]
    fn uniquify_preserves_free_vars() {
        let e = and(has_token(7, "x"), exists(7, has_token(7, "y")));
        let u = uniquify(&e);
        let free: Vec<u32> = free_vars(&u).into_iter().map(|v| v.0).collect();
        assert_eq!(free, vec![7]);
    }

    #[test]
    fn max_var_spans_binders_and_atoms() {
        let e = exists(9, has_token(3, "a"));
        assert_eq!(max_var(&e), Some(VarId(9)));
    }
}
