//! # ftsl-calculus — the full-text calculus (FTC)
//!
//! Section 2.2 of the paper: a first-order logic over token positions with
//! the predicates `SearchContext(node)`, `hasPos(node, pos)`,
//! `hasToken(pos, tok)` plus an extensible set `Preds` of position-based
//! predicates. A calculus query is
//! `{node | SearchContext(node) ∧ QueryExpr(node)}` where the query
//! expression has `node` as its only free variable and quantifiers range
//! over the node's positions (`∃p (hasPos(node,p) ∧ …)` /
//! `∀p (hasPos(node,p) ⇒ …)`), which is the calculus' safety guarantee.
//!
//! This crate provides:
//!
//! * the AST ([`QueryExpr`]) and an ergonomic builder DSL ([`build`]);
//! * well-formedness/safety checking ([`safety`]);
//! * a **reference interpreter** ([`interp`]) implementing the textbook
//!   semantics directly — exponential, but the ground truth every engine in
//!   `ftsl-exec` is differentially tested against;
//! * the six-step normalization pipeline from the proof of Theorem 4
//!   ([`normalize`]) and the resulting finite-alphabet BOOL completeness
//!   construction ([`bool_complete`]);
//! * query size parameters `toks_Q`, `preds_Q`, `ops_Q` (Section 5.1.1).

pub mod ast;
pub mod bool_complete;
pub mod build;
pub mod interp;
pub mod normalize;
pub mod params;
pub mod safety;
pub mod vars;

pub use ast::{CalcQuery, QueryExpr, VarId};
pub use interp::Interpreter;
pub use params::QueryParams;
