//! Query size parameters (Section 5.1.1).
//!
//! `toks_Q` (tokens, including `ANY` occurrences, i.e. `hasPos` atoms),
//! `preds_Q` (predicate applications), `ops_Q` (NOT/AND/OR/SOME/EVERY
//! operations). These drive both the complexity formulas of Figure 3 and the
//! experiment sweeps of Figures 5–6.

use crate::ast::QueryExpr;

/// Size measures of a query expression.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryParams {
    /// `toks_Q`: token atoms (`hasToken`) plus universal-token atoms
    /// (`hasPos`, the calculus form of `ANY`).
    pub toks: usize,
    /// `preds_Q`: predicate applications.
    pub preds: usize,
    /// `ops_Q`: NOT, AND, OR, SOME (∃), EVERY (∀) operations.
    pub ops: usize,
}

impl QueryParams {
    /// Measure an expression.
    pub fn of(expr: &QueryExpr) -> Self {
        let mut p = QueryParams::default();
        p.walk(expr);
        p
    }

    fn walk(&mut self, expr: &QueryExpr) {
        match expr {
            QueryExpr::HasPos(_) => self.toks += 1,
            QueryExpr::HasToken(..) => self.toks += 1,
            QueryExpr::Pred { .. } => self.preds += 1,
            QueryExpr::Not(e) => {
                self.ops += 1;
                self.walk(e);
            }
            QueryExpr::And(a, b) | QueryExpr::Or(a, b) => {
                self.ops += 1;
                self.walk(a);
                self.walk(b);
            }
            QueryExpr::Exists(_, e) | QueryExpr::Forall(_, e) => {
                self.ops += 1;
                self.walk(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;
    use ftsl_predicates::PredicateRegistry;

    #[test]
    fn counts_match_section_5_1_1() {
        let reg = PredicateRegistry::with_builtins();
        let distance = reg.lookup("distance").unwrap();
        // SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'b' AND distance(p1,p2,5))
        let e = exists(
            1,
            exists(
                2,
                and(
                    and(has_token(1, "a"), has_token(2, "b")),
                    pred(distance, &[1, 2], &[5]),
                ),
            ),
        );
        let p = QueryParams::of(&e);
        assert_eq!(p.toks, 2);
        assert_eq!(p.preds, 1);
        assert_eq!(p.ops, 4); // 2 quantifiers + 2 ANDs
    }

    #[test]
    fn has_pos_counts_as_any_token() {
        let e = exists(1, has_pos(1));
        let p = QueryParams::of(&e);
        assert_eq!(p.toks, 1);
        assert_eq!(p.ops, 1);
    }
}
