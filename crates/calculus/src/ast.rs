//! The FTC abstract syntax.

use ftsl_predicates::PredicateId;
use std::fmt;

/// A position variable. Ids are arbitrary; [`crate::vars::uniquify`]
/// renames bound variables apart when required.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A query expression (Section 2.2.1). The context-node variable `node` is
/// implicit; quantifiers carry the paper's safety shape built in:
/// `Exists(v, e)` means `∃v (hasPos(node, v) ∧ e)` and `Forall(v, e)` means
/// `∀v (hasPos(node, v) ⇒ e)`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum QueryExpr {
    /// `hasPos(node, v)` — true whenever `v` is bound to a position of the
    /// node (trivially true for quantifier-bound variables; kept for
    /// faithfulness to the grammar).
    HasPos(VarId),
    /// `hasToken(v, 'tok')` — the token at position `v` is `tok`. Tokens are
    /// stored as normalized strings; resolution against a concrete corpus
    /// vocabulary happens at evaluation/planning time.
    HasToken(VarId, String),
    /// `pred(v1..vm, c1..cr)` for `pred ∈ Preds`.
    Pred {
        /// Which registered predicate.
        pred: PredicateId,
        /// Position arguments.
        vars: Vec<VarId>,
        /// Integer constants.
        consts: Vec<i64>,
    },
    /// `¬e`.
    Not(Box<QueryExpr>),
    /// `e1 ∧ e2`.
    And(Box<QueryExpr>, Box<QueryExpr>),
    /// `e1 ∨ e2`.
    Or(Box<QueryExpr>, Box<QueryExpr>),
    /// `∃v (hasPos(node, v) ∧ e)`.
    Exists(VarId, Box<QueryExpr>),
    /// `∀v (hasPos(node, v) ⇒ e)`.
    Forall(VarId, Box<QueryExpr>),
}

impl QueryExpr {
    /// Number of AST nodes (a size measure used by tests and generators).
    pub fn size(&self) -> usize {
        match self {
            QueryExpr::HasPos(_) | QueryExpr::HasToken(..) | QueryExpr::Pred { .. } => 1,
            QueryExpr::Not(e) | QueryExpr::Exists(_, e) | QueryExpr::Forall(_, e) => 1 + e.size(),
            QueryExpr::And(a, b) | QueryExpr::Or(a, b) => 1 + a.size() + b.size(),
        }
    }
}

impl fmt::Debug for QueryExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryExpr::HasPos(v) => write!(f, "hasPos({v})"),
            QueryExpr::HasToken(v, t) => write!(f, "hasToken({v},'{t}')"),
            QueryExpr::Pred { pred, vars, consts } => {
                write!(f, "{pred:?}(")?;
                for (i, v) in vars.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                for c in consts {
                    write!(f, ",{c}")?;
                }
                write!(f, ")")
            }
            QueryExpr::Not(e) => write!(f, "¬({e:?})"),
            QueryExpr::And(a, b) => write!(f, "({a:?} ∧ {b:?})"),
            QueryExpr::Or(a, b) => write!(f, "({a:?} ∨ {b:?})"),
            QueryExpr::Exists(v, e) => write!(f, "∃{v}({e:?})"),
            QueryExpr::Forall(v, e) => write!(f, "∀{v}({e:?})"),
        }
    }
}

/// A full calculus query `{node | SearchContext(node) ∧ expr(node)}`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CalcQuery {
    /// The query expression; must have no free position variables.
    pub expr: QueryExpr,
}

impl CalcQuery {
    /// Wrap an expression as a query. See [`crate::safety::check_query`] for
    /// validation.
    pub fn new(expr: QueryExpr) -> Self {
        CalcQuery { expr }
    }
}

#[cfg(test)]
mod tests {
    use crate::build::*;

    #[test]
    fn size_counts_nodes() {
        let e = exists(1, and(has_token(1, "test"), not(has_pos(1))));
        assert_eq!(e.size(), 5);
    }

    #[test]
    fn debug_rendering_is_readable() {
        let e = exists(1, has_token(1, "test"));
        assert_eq!(format!("{e:?}"), "∃p1(hasToken(p1,'test'))");
    }
}
