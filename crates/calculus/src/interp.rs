//! The reference interpreter: textbook first-order semantics.
//!
//! Evaluates a query expression on one context node by enumerating position
//! assignments — `O(pos_per_cnode ^ quantifier_depth)`, exactly the naive
//! bound the paper's Section 5 engines improve upon. Every engine in
//! `ftsl-exec` is differentially tested against this implementation.

use crate::ast::{CalcQuery, QueryExpr, VarId};
use ftsl_model::{Corpus, NodeId, Position};
use ftsl_predicates::PredicateRegistry;
use std::collections::HashMap;

/// Reference evaluator for calculus queries over a corpus.
pub struct Interpreter<'a> {
    corpus: &'a Corpus,
    registry: &'a PredicateRegistry,
}

impl<'a> Interpreter<'a> {
    /// Create an interpreter over `corpus` with predicate set `registry`.
    pub fn new(corpus: &'a Corpus, registry: &'a PredicateRegistry) -> Self {
        Interpreter { corpus, registry }
    }

    /// Evaluate a query: the set of context nodes satisfying it, in id order.
    pub fn eval_query(&self, query: &CalcQuery) -> Vec<NodeId> {
        self.corpus
            .node_ids()
            .filter(|&n| self.eval_node(n, &query.expr))
            .collect()
    }

    /// Evaluate a (closed) expression on a single node.
    pub fn eval_node(&self, node: NodeId, expr: &QueryExpr) -> bool {
        let positions = self.corpus.positions(node);
        let mut env = HashMap::new();
        self.eval(node, &positions, expr, &mut env)
    }

    fn eval(
        &self,
        node: NodeId,
        positions: &[Position],
        expr: &QueryExpr,
        env: &mut HashMap<VarId, Position>,
    ) -> bool {
        match expr {
            QueryExpr::HasPos(v) => env.contains_key(v),
            QueryExpr::HasToken(v, tok) => {
                let Some(&pos) = env.get(v) else { return false };
                let Some(tok_id) = self.corpus.token_id(tok) else {
                    return false;
                };
                self.corpus.token_at(node, pos) == Some(tok_id)
            }
            QueryExpr::Pred { pred, vars, consts } => {
                let p = self.registry.get(*pred);
                let mut args = Vec::with_capacity(vars.len());
                for v in vars {
                    let Some(&pos) = env.get(v) else { return false };
                    args.push(pos);
                }
                p.eval(&args, consts)
            }
            QueryExpr::Not(e) => !self.eval(node, positions, e, env),
            QueryExpr::And(a, b) => {
                self.eval(node, positions, a, env) && self.eval(node, positions, b, env)
            }
            QueryExpr::Or(a, b) => {
                self.eval(node, positions, a, env) || self.eval(node, positions, b, env)
            }
            QueryExpr::Exists(v, e) => {
                let saved = env.get(v).copied();
                let mut found = false;
                for &pos in positions {
                    env.insert(*v, pos);
                    if self.eval(node, positions, e, env) {
                        found = true;
                        break;
                    }
                }
                restore(env, *v, saved);
                found
            }
            QueryExpr::Forall(v, e) => {
                let saved = env.get(v).copied();
                let mut all = true;
                for &pos in positions {
                    env.insert(*v, pos);
                    if !self.eval(node, positions, e, env) {
                        all = false;
                        break;
                    }
                }
                restore(env, *v, saved);
                all
            }
        }
    }
}

fn restore(env: &mut HashMap<VarId, Position>, v: VarId, saved: Option<Position>) {
    match saved {
        Some(p) => {
            env.insert(v, p);
        }
        None => {
            env.remove(&v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;
    use ftsl_model::Corpus;

    fn setup() -> (Corpus, PredicateRegistry) {
        let corpus = Corpus::from_texts(&[
            "test driven usability", // n0
            "usability test",        // n1
            "test test something",   // n2
            "nothing relevant here", // n3
            "",                      // n4 (empty node)
        ]);
        (corpus, PredicateRegistry::with_builtins())
    }

    fn ids(v: Vec<NodeId>) -> Vec<u32> {
        v.into_iter().map(|n| n.0).collect()
    }

    #[test]
    fn paper_example_conjunction() {
        // {node | ∃p1 hasToken(p1,'test') ∧ ∃p2 hasToken(p2,'usability')}
        let (corpus, reg) = setup();
        let interp = Interpreter::new(&corpus, &reg);
        let q = CalcQuery::new(and(contains(1, "test"), contains(2, "usability")));
        assert_eq!(ids(interp.eval_query(&q)), vec![0, 1]);
    }

    #[test]
    fn paper_example_distance() {
        // test ... usability with at most 5 intervening tokens.
        let (corpus, reg) = setup();
        let interp = Interpreter::new(&corpus, &reg);
        let distance = reg.lookup("distance").unwrap();
        let q = CalcQuery::new(exists(
            1,
            and(
                has_token(1, "test"),
                exists(
                    2,
                    and(has_token(2, "usability"), pred(distance, &[1, 2], &[5])),
                ),
            ),
        ));
        assert_eq!(ids(interp.eval_query(&q)), vec![0, 1]);
    }

    #[test]
    fn paper_example_two_occurrences_without_token() {
        // Two occurrences of 'test' and no 'usability'.
        let (corpus, reg) = setup();
        let interp = Interpreter::new(&corpus, &reg);
        let diffpos = reg.lookup("diffpos").unwrap();
        let q = CalcQuery::new(exists(
            1,
            and(
                has_token(1, "test"),
                exists(
                    2,
                    and(
                        and(has_token(2, "test"), pred(diffpos, &[1, 2], &[])),
                        forall(3, not(has_token(3, "usability"))),
                    ),
                ),
            ),
        ));
        assert_eq!(ids(interp.eval_query(&q)), vec![2]);
    }

    #[test]
    fn forall_is_vacuously_true_on_empty_nodes() {
        let (corpus, reg) = setup();
        let interp = Interpreter::new(&corpus, &reg);
        let q = CalcQuery::new(forall(1, has_token(1, "test")));
        // Node 4 is empty: ∀ holds vacuously.
        assert!(ids(interp.eval_query(&q)).contains(&4));
    }

    #[test]
    fn exists_is_false_on_empty_nodes() {
        let (corpus, reg) = setup();
        let interp = Interpreter::new(&corpus, &reg);
        let q = CalcQuery::new(exists(1, has_pos(1)));
        let result = ids(interp.eval_query(&q));
        assert!(!result.contains(&4));
        assert_eq!(result, vec![0, 1, 2, 3]);
    }

    #[test]
    fn unknown_tokens_match_nothing() {
        let (corpus, reg) = setup();
        let interp = Interpreter::new(&corpus, &reg);
        let q = CalcQuery::new(contains(1, "zzz_not_in_corpus"));
        assert!(interp.eval_query(&q).is_empty());
    }

    #[test]
    fn negation_of_contains() {
        let (corpus, reg) = setup();
        let interp = Interpreter::new(&corpus, &reg);
        let q = CalcQuery::new(not(contains(1, "test")));
        assert_eq!(ids(interp.eval_query(&q)), vec![3, 4]);
    }

    #[test]
    fn incompleteness_witness_of_theorem_3() {
        // ∃p (hasPos ∧ ¬hasToken(p, t1)): "contains a token that is not t1".
        let mut corpus = Corpus::new();
        corpus.add_text("t1"); // CN1: only t1 — should NOT match
        corpus.add_text("t1 t2"); // CN2: t1 and t2 — should match
        let reg = PredicateRegistry::with_builtins();
        let interp = Interpreter::new(&corpus, &reg);
        let q = CalcQuery::new(exists(1, not(has_token(1, "t1"))));
        assert_eq!(ids(interp.eval_query(&q)), vec![1]);
    }
}
