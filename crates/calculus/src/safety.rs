//! Well-formedness checking for calculus queries.
//!
//! A valid query expression must be *closed* (its only free variable is the
//! implicit `node`) and every predicate application must match its
//! registered arity — the calculus analogue of relational safety that the
//! paper builds into the quantifier shape.

use crate::ast::{CalcQuery, QueryExpr};
use crate::vars::free_vars;
use ftsl_predicates::PredicateRegistry;
use std::fmt;

/// A safety violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SafetyError {
    /// The expression has free position variables.
    FreeVariables(Vec<u32>),
    /// A predicate was applied with the wrong number of position arguments.
    PredicateArity {
        /// Predicate name.
        name: String,
        /// Expected position arity.
        expected: usize,
        /// Supplied position arguments.
        got: usize,
    },
    /// A predicate was applied with the wrong number of constants.
    PredicateConsts {
        /// Predicate name.
        name: String,
        /// Expected constant count.
        expected: usize,
        /// Supplied constants.
        got: usize,
    },
    /// A predicate id is not present in the registry.
    UnknownPredicate(u32),
    /// A token literal is empty.
    EmptyToken,
}

impl fmt::Display for SafetyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SafetyError::FreeVariables(vs) => write!(f, "free position variables: {vs:?}"),
            SafetyError::PredicateArity {
                name,
                expected,
                got,
            } => {
                write!(
                    f,
                    "predicate {name} expects {expected} positions, got {got}"
                )
            }
            SafetyError::PredicateConsts {
                name,
                expected,
                got,
            } => {
                write!(
                    f,
                    "predicate {name} expects {expected} constants, got {got}"
                )
            }
            SafetyError::UnknownPredicate(id) => write!(f, "unknown predicate id {id}"),
            SafetyError::EmptyToken => write!(f, "empty token literal"),
        }
    }
}

impl std::error::Error for SafetyError {}

/// Validate a query: closed + arity-correct.
pub fn check_query(query: &CalcQuery, registry: &PredicateRegistry) -> Result<(), SafetyError> {
    let free = free_vars(&query.expr);
    if !free.is_empty() {
        return Err(SafetyError::FreeVariables(
            free.into_iter().map(|v| v.0).collect(),
        ));
    }
    check_expr(&query.expr, registry)
}

/// Validate arities and literals of an expression (free variables allowed —
/// used on subexpressions).
pub fn check_expr(expr: &QueryExpr, registry: &PredicateRegistry) -> Result<(), SafetyError> {
    match expr {
        QueryExpr::HasPos(_) => Ok(()),
        QueryExpr::HasToken(_, tok) => {
            if tok.is_empty() {
                Err(SafetyError::EmptyToken)
            } else {
                Ok(())
            }
        }
        QueryExpr::Pred { pred, vars, consts } => {
            if pred.index() >= registry.len() {
                return Err(SafetyError::UnknownPredicate(pred.0));
            }
            let p = registry.get(*pred);
            if vars.len() != p.arity() {
                return Err(SafetyError::PredicateArity {
                    name: p.name().to_string(),
                    expected: p.arity(),
                    got: vars.len(),
                });
            }
            if consts.len() != p.num_consts() {
                return Err(SafetyError::PredicateConsts {
                    name: p.name().to_string(),
                    expected: p.num_consts(),
                    got: consts.len(),
                });
            }
            Ok(())
        }
        QueryExpr::Not(e) | QueryExpr::Exists(_, e) | QueryExpr::Forall(_, e) => {
            check_expr(e, registry)
        }
        QueryExpr::And(a, b) | QueryExpr::Or(a, b) => {
            check_expr(a, registry)?;
            check_expr(b, registry)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;
    use ftsl_predicates::PredicateId;

    #[test]
    fn closed_query_is_safe() {
        let reg = PredicateRegistry::with_builtins();
        let q = CalcQuery::new(contains(1, "test"));
        assert_eq!(check_query(&q, &reg), Ok(()));
    }

    #[test]
    fn free_variable_is_reported() {
        let reg = PredicateRegistry::with_builtins();
        let q = CalcQuery::new(has_token(3, "test"));
        assert_eq!(
            check_query(&q, &reg),
            Err(SafetyError::FreeVariables(vec![3]))
        );
    }

    #[test]
    fn wrong_predicate_arity_is_reported() {
        let reg = PredicateRegistry::with_builtins();
        let distance = reg.lookup("distance").unwrap();
        let q = CalcQuery::new(exists(1, pred(distance, &[1], &[5])));
        assert!(matches!(
            check_query(&q, &reg),
            Err(SafetyError::PredicateArity {
                expected: 2,
                got: 1,
                ..
            })
        ));
    }

    #[test]
    fn wrong_constant_count_is_reported() {
        let reg = PredicateRegistry::with_builtins();
        let distance = reg.lookup("distance").unwrap();
        let q = CalcQuery::new(exists(1, exists(2, pred(distance, &[1, 2], &[]))));
        assert!(matches!(
            check_query(&q, &reg),
            Err(SafetyError::PredicateConsts {
                expected: 1,
                got: 0,
                ..
            })
        ));
    }

    #[test]
    fn unknown_predicate_is_reported() {
        let reg = PredicateRegistry::empty();
        let q = CalcQuery::new(exists(1, pred(PredicateId(42), &[1], &[])));
        assert_eq!(
            check_query(&q, &reg),
            Err(SafetyError::UnknownPredicate(42))
        );
    }

    #[test]
    fn empty_token_is_reported() {
        let reg = PredicateRegistry::with_builtins();
        let q = CalcQuery::new(exists(
            1,
            QueryExpr::HasToken(crate::ast::VarId(1), String::new()),
        ));
        assert_eq!(check_query(&q, &reg), Err(SafetyError::EmptyToken));
    }
}
