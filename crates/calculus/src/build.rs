//! Ergonomic constructors for calculus expressions.
//!
//! These keep tests and examples close to the paper's notation:
//!
//! ```
//! use ftsl_calculus::build::*;
//! // ∃p1 (hasToken(p1,'test') ∧ ∃p2 (hasToken(p2,'usability')))
//! let q = exists(1, and(has_token(1, "test"), exists(2, has_token(2, "usability"))));
//! ```

use crate::ast::{QueryExpr, VarId};
use ftsl_predicates::PredicateId;

/// `hasPos(node, p{v})`.
pub fn has_pos(v: u32) -> QueryExpr {
    QueryExpr::HasPos(VarId(v))
}

/// `hasToken(p{v}, tok)`.
pub fn has_token(v: u32, tok: &str) -> QueryExpr {
    QueryExpr::HasToken(VarId(v), tok.to_lowercase())
}

/// `pred(vars..., consts...)`.
pub fn pred(pred: PredicateId, vars: &[u32], consts: &[i64]) -> QueryExpr {
    QueryExpr::Pred {
        pred,
        vars: vars.iter().map(|&v| VarId(v)).collect(),
        consts: consts.to_vec(),
    }
}

/// `¬e`.
pub fn not(e: QueryExpr) -> QueryExpr {
    QueryExpr::Not(Box::new(e))
}

/// `a ∧ b`.
pub fn and(a: QueryExpr, b: QueryExpr) -> QueryExpr {
    QueryExpr::And(Box::new(a), Box::new(b))
}

/// `a ∨ b`.
pub fn or(a: QueryExpr, b: QueryExpr) -> QueryExpr {
    QueryExpr::Or(Box::new(a), Box::new(b))
}

/// Conjunction of several expressions (`true` for the empty list is not
/// representable; panics on empty input).
pub fn and_all(mut exprs: Vec<QueryExpr>) -> QueryExpr {
    assert!(!exprs.is_empty(), "and_all of empty list");
    let mut acc = exprs.remove(0);
    for e in exprs {
        acc = and(acc, e);
    }
    acc
}

/// `∃p{v} (hasPos ∧ e)`.
pub fn exists(v: u32, e: QueryExpr) -> QueryExpr {
    QueryExpr::Exists(VarId(v), Box::new(e))
}

/// `∀p{v} (hasPos ⇒ e)`.
pub fn forall(v: u32, e: QueryExpr) -> QueryExpr {
    QueryExpr::Forall(VarId(v), Box::new(e))
}

/// The common "node contains token" shape: `∃p (hasToken(p, tok))`.
pub fn contains(v: u32, tok: &str) -> QueryExpr {
    exists(v, has_token(v, tok))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_all_folds_left() {
        let e = and_all(vec![has_pos(1), has_pos(2), has_pos(3)]);
        assert_eq!(format!("{e:?}"), "((hasPos(p1) ∧ hasPos(p2)) ∧ hasPos(p3))");
    }

    #[test]
    #[should_panic]
    fn and_all_empty_panics() {
        and_all(vec![]);
    }

    #[test]
    fn tokens_are_normalized() {
        assert_eq!(has_token(1, "Test"), has_token(1, "test"));
    }
}
