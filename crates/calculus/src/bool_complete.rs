//! Theorem 4: BOOL is complete for the restricted calculus when `T` is
//! finite.
//!
//! Maps the normal form of [`crate::normalize`] to a BOOL query over a given
//! finite alphabet. The interesting case is the complement fact
//! `∃p ⋀ ¬hasToken(p, tⱼ)`, which (only!) under the finite-`T` assumption
//! can be written as the disjunction of all other tokens — the proof's
//! remark that BOOL completeness "is not always practical" is directly
//! visible in the blow-up this produces.

use crate::ast::QueryExpr;
use crate::normalize::{Fact, Prop};

/// The BOOL language of Section 4.1:
/// `Query := Token | NOT Query | Query AND Query | Query OR Query`,
/// `Token := StringLiteral | ANY`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BoolQuery {
    /// A string-literal token.
    Token(String),
    /// The universal token.
    Any,
    /// `NOT q`.
    Not(Box<BoolQuery>),
    /// `q1 AND q2`.
    And(Box<BoolQuery>, Box<BoolQuery>),
    /// `q1 OR q2`.
    Or(Box<BoolQuery>, Box<BoolQuery>),
}

impl BoolQuery {
    /// The calculus semantics of BOOL (Section 4.1). `next_var` supplies
    /// fresh variable ids.
    pub fn to_calculus(&self, next_var: &mut u32) -> QueryExpr {
        match self {
            BoolQuery::Token(t) => {
                let v = fresh(next_var);
                QueryExpr::Exists(v, Box::new(QueryExpr::HasToken(v, t.clone())))
            }
            BoolQuery::Any => {
                let v = fresh(next_var);
                QueryExpr::Exists(v, Box::new(QueryExpr::HasPos(v)))
            }
            BoolQuery::Not(q) => QueryExpr::Not(Box::new(q.to_calculus(next_var))),
            BoolQuery::And(a, b) => QueryExpr::And(
                Box::new(a.to_calculus(next_var)),
                Box::new(b.to_calculus(next_var)),
            ),
            BoolQuery::Or(a, b) => QueryExpr::Or(
                Box::new(a.to_calculus(next_var)),
                Box::new(b.to_calculus(next_var)),
            ),
        }
    }

    /// Surface rendering in BOOL syntax.
    pub fn render(&self) -> String {
        match self {
            BoolQuery::Token(t) => format!("'{t}'"),
            BoolQuery::Any => "ANY".to_string(),
            BoolQuery::Not(q) => format!("NOT ({})", q.render()),
            BoolQuery::And(a, b) => format!("({} AND {})", a.render(), b.render()),
            BoolQuery::Or(a, b) => format!("({} OR {})", a.render(), b.render()),
        }
    }

    /// Number of AST nodes — used to demonstrate the finite-`T` blow-up.
    pub fn size(&self) -> usize {
        match self {
            BoolQuery::Token(_) | BoolQuery::Any => 1,
            BoolQuery::Not(q) => 1 + q.size(),
            BoolQuery::And(a, b) | BoolQuery::Or(a, b) => 1 + a.size() + b.size(),
        }
    }
}

fn fresh(next_var: &mut u32) -> crate::ast::VarId {
    let v = crate::ast::VarId(*next_var);
    *next_var += 1;
    v
}

/// The proof's unsatisfiable BOOL query: `ANY AND NOT(t1 OR ... OR tc)` —
/// requires a token outside the (entire) alphabet.
fn false_query(alphabet: &[String]) -> BoolQuery {
    let all = or_all(alphabet.iter().cloned().map(BoolQuery::Token).collect());
    match all {
        Some(union) => BoolQuery::And(
            Box::new(BoolQuery::Any),
            Box::new(BoolQuery::Not(Box::new(union))),
        ),
        None => BoolQuery::And(
            Box::new(BoolQuery::Any),
            Box::new(BoolQuery::Not(Box::new(BoolQuery::Any))),
        ),
    }
}

/// A BOOL query matching every node (including empty ones).
fn true_query() -> BoolQuery {
    BoolQuery::Or(
        Box::new(BoolQuery::Any),
        Box::new(BoolQuery::Not(Box::new(BoolQuery::Any))),
    )
}

fn or_all(mut qs: Vec<BoolQuery>) -> Option<BoolQuery> {
    if qs.is_empty() {
        return None;
    }
    let mut acc = qs.remove(0);
    for q in qs {
        acc = BoolQuery::Or(Box::new(acc), Box::new(q));
    }
    Some(acc)
}

/// Translate a normal form to BOOL over the finite alphabet `alphabet`.
///
/// Soundness requires that every token occurring in any context node is a
/// member of `alphabet` — exactly Theorem 4's finiteness hypothesis.
pub fn to_bool(prop: &Prop, alphabet: &[String]) -> BoolQuery {
    match prop {
        Prop::True => true_query(),
        Prop::False => false_query(alphabet),
        Prop::Atom(fact) => fact_to_bool(fact, alphabet),
        Prop::Not(p) => BoolQuery::Not(Box::new(to_bool(p, alphabet))),
        Prop::And(a, b) => BoolQuery::And(
            Box::new(to_bool(a, alphabet)),
            Box::new(to_bool(b, alphabet)),
        ),
        Prop::Or(a, b) => BoolQuery::Or(
            Box::new(to_bool(a, alphabet)),
            Box::new(to_bool(b, alphabet)),
        ),
    }
}

fn fact_to_bool(fact: &Fact, alphabet: &[String]) -> BoolQuery {
    match fact {
        Fact::Token(t) => BoolQuery::Token(t.clone()),
        Fact::Any => BoolQuery::Any,
        Fact::Never => false_query(alphabet),
        Fact::Complement(excluded) => {
            let rest: Vec<BoolQuery> = alphabet
                .iter()
                .filter(|t| !excluded.contains(*t))
                .cloned()
                .map(BoolQuery::Token)
                .collect();
            or_all(rest).unwrap_or_else(|| false_query(alphabet))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;
    use crate::interp::Interpreter;
    use crate::normalize::normalize;
    use crate::CalcQuery;
    use ftsl_model::{Corpus, NodeId};
    use ftsl_predicates::PredicateRegistry;

    fn alphabet() -> Vec<String> {
        ["a", "b", "c", "d"].iter().map(|s| s.to_string()).collect()
    }

    /// Evaluate both the original and the round-tripped BOOL query and
    /// compare (the executable content of Theorem 4).
    fn assert_equivalent(expr: &QueryExpr, corpus: &Corpus) {
        let reg = PredicateRegistry::with_builtins();
        let interp = Interpreter::new(corpus, &reg);
        let prop = normalize(expr).expect("normalizable");
        let bool_q = to_bool(&prop, &alphabet());
        let mut next = 1000;
        let back = bool_q.to_calculus(&mut next);
        let lhs = interp.eval_query(&CalcQuery::new(expr.clone()));
        let rhs = interp.eval_query(&CalcQuery::new(back));
        assert_eq!(
            lhs,
            rhs,
            "BOOL translation diverged for {expr:?} => {}",
            bool_q.render()
        );
    }

    fn corpus() -> Corpus {
        Corpus::from_texts(&["a b", "a a", "c", "b d c", "", "d"])
    }

    #[test]
    fn contains_roundtrip() {
        assert_equivalent(&contains(1, "a"), &corpus());
    }

    #[test]
    fn complement_fact_expands_over_alphabet() {
        // "node contains a token that is not a" — Theorem 3's witness.
        let e = exists(1, not(has_token(1, "a")));
        let prop = normalize(&e).unwrap();
        let q = to_bool(&prop, &alphabet());
        assert_eq!(q.render(), "(('b' OR 'c') OR 'd')");
        assert_equivalent(&e, &corpus());
    }

    #[test]
    fn forall_roundtrip() {
        let e = forall(1, has_token(1, "a"));
        assert_equivalent(&e, &corpus());
    }

    #[test]
    fn nested_mix_roundtrip() {
        let e = or(
            and(contains(1, "a"), not(contains(2, "c"))),
            forall(3, or(has_token(3, "b"), has_token(3, "d"))),
        );
        assert_equivalent(&e, &corpus());
    }

    #[test]
    fn unsatisfiable_expression_matches_nothing() {
        let e = exists(1, and(has_token(1, "a"), has_token(1, "b")));
        let reg = PredicateRegistry::with_builtins();
        let c = corpus();
        let interp = Interpreter::new(&c, &reg);
        let prop = normalize(&e).unwrap();
        let q = to_bool(&prop, &alphabet());
        let mut next = 0;
        let back = q.to_calculus(&mut next);
        assert_eq!(
            interp.eval_query(&CalcQuery::new(back)),
            Vec::<NodeId>::new()
        );
    }

    #[test]
    fn true_query_matches_empty_nodes_too() {
        let q = true_query();
        let mut next = 0;
        let back = q.to_calculus(&mut next);
        let reg = PredicateRegistry::with_builtins();
        let c = corpus();
        let interp = Interpreter::new(&c, &reg);
        assert_eq!(interp.eval_query(&CalcQuery::new(back)).len(), c.len());
    }

    #[test]
    fn complement_blowup_is_linear_in_alphabet() {
        let e = exists(1, not(has_token(1, "a")));
        let prop = normalize(&e).unwrap();
        let big: Vec<String> = (0..100).map(|i| format!("tok{i}")).collect();
        let q = to_bool(&prop, &big);
        assert!(q.size() >= 100, "complement must enumerate the alphabet");
    }
}
