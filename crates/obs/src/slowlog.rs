//! Slow-query log: a bounded ring buffer capturing the profile of any
//! query whose wall time exceeds a configurable threshold.
//!
//! Slot reservation is lock-free (a single `fetch_add` on the write
//! cursor); each slot is guarded by its own mutex purely to prevent torn
//! reads of the entry payload. Fast queries never touch the ring — the
//! only cost on the non-slow path is one relaxed threshold load.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::trace::Trace;

/// One captured slow query.
#[derive(Clone, Debug)]
pub struct SlowEntry {
    /// Monotone sequence number (0-based admission order).
    pub seq: u64,
    /// The query as submitted (with a kind prefix for top-k/near requests).
    pub query: String,
    /// Wall time of the request in microseconds.
    pub micros: u64,
    /// Whether the result came from the result cache.
    pub cached: bool,
    /// Free-form summary (counter deltas, engine, hit count).
    pub summary: String,
    /// Full span tree when the engine ran with tracing enabled.
    pub trace: Option<Trace>,
}

/// Bounded ring of [`SlowEntry`] records.
pub struct SlowLog {
    threshold_us: AtomicU64,
    total: AtomicU64,
    slots: Vec<Mutex<Option<SlowEntry>>>,
}

impl SlowLog {
    /// `threshold_us` of 0 disables capture; `capacity` is clamped to ≥ 1.
    pub fn new(threshold_us: u64, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        SlowLog {
            threshold_us: AtomicU64::new(threshold_us),
            total: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Current threshold in microseconds (0 = disabled).
    #[inline]
    pub fn threshold_us(&self) -> u64 {
        self.threshold_us.load(Ordering::Relaxed)
    }

    /// Adjust the threshold at runtime. 0 disables capture.
    pub fn set_threshold_us(&self, us: u64) {
        self.threshold_us.store(us, Ordering::Relaxed);
    }

    /// Whether a request taking `micros` should be captured.
    #[inline]
    pub fn should_log(&self, micros: u64) -> bool {
        let t = self.threshold_us();
        t != 0 && micros >= t
    }

    /// Lifetime count of captured queries (including ones already evicted
    /// from the ring).
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Record an entry. `entry.seq` is assigned here.
    pub fn record(&self, mut entry: SlowEntry) {
        let seq = self.total.fetch_add(1, Ordering::Relaxed);
        entry.seq = seq;
        let slot = (seq % self.slots.len() as u64) as usize;
        *self.slots[slot].lock().unwrap() = Some(entry);
    }

    /// Retained entries, most recent first.
    pub fn entries(&self) -> Vec<SlowEntry> {
        let mut out: Vec<SlowEntry> = self
            .slots
            .iter()
            .filter_map(|s| s.lock().unwrap().clone())
            .collect();
        out.sort_by_key(|e| std::cmp::Reverse(e.seq));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(query: &str, micros: u64) -> SlowEntry {
        SlowEntry {
            seq: 0,
            query: query.to_string(),
            micros,
            cached: false,
            summary: String::new(),
            trace: None,
        }
    }

    #[test]
    fn threshold_gates_logging() {
        let log = SlowLog::new(0, 4);
        assert!(!log.should_log(u64::MAX), "threshold 0 disables capture");
        log.set_threshold_us(100);
        assert!(!log.should_log(99));
        assert!(log.should_log(100));
        assert!(log.should_log(5000));
    }

    #[test]
    fn ring_keeps_most_recent() {
        let log = SlowLog::new(1, 3);
        for i in 0..5u64 {
            log.record(entry(&format!("q{i}"), 10 + i));
        }
        assert_eq!(log.total(), 5);
        let entries = log.entries();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].query, "q4");
        assert_eq!(entries[0].seq, 4);
        assert_eq!(entries[2].query, "q2");
    }

    #[test]
    fn concurrent_record_is_safe() {
        let log = std::sync::Arc::new(SlowLog::new(1, 8));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let log = log.clone();
                std::thread::spawn(move || {
                    for i in 0..50u64 {
                        log.record(entry(&format!("t{t}-{i}"), i + 1));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(log.total(), 200);
        assert_eq!(log.entries().len(), 8);
    }
}
