//! Lock-free metrics: counters, gauges, log-bucketed histograms, and a
//! registry that exports them as Prometheus text or JSON.
//!
//! All recording paths are single relaxed atomic operations — safe to call
//! from every serve worker concurrently with readers. Snapshots taken while
//! writers are active are per-atomic consistent (each value is a real value
//! that counter held) but not a cross-counter atomic cut; exact cross-metric
//! reconciliation holds once writers are quiescent.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Monotone event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one per bit-width of the recorded value.
///
/// Bucket 0 holds exactly the value 0; bucket `i >= 1` holds values in
/// `[2^(i-1), 2^i - 1]`. Relative quantile error is bounded by 2×, which is
/// plenty for latency percentiles, and bucket indexing is a single
/// `leading_zeros` — no search, no configuration.
pub const BUCKETS: usize = 65;

/// Inclusive `[lo, hi]` value range covered by bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        _ => (1 << (i - 1), (1 << i) - 1),
    }
}

#[inline]
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Lock-free log₂-bucketed histogram.
///
/// `record` is three relaxed atomic RMWs; snapshots are mergeable across
/// worker threads and over time.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    #[inline]
    pub fn record(&self, v: u64) {
        self.counts[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: std::array::from_fn(|i| self.counts[i].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of a [`Histogram`], mergeable and queryable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub counts: [u64; BUCKETS],
    pub sum: u64,
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    pub fn empty() -> Self {
        HistogramSnapshot {
            counts: [0; BUCKETS],
            sum: 0,
            max: 0,
        }
    }

    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Combine two snapshots (e.g. per-worker histograms into a pool-wide
    /// view). Associative and commutative. `sum` wraps on overflow — the
    /// same modular semantics `Histogram::record`'s atomic `fetch_add`
    /// has, so merging N worker snapshots equals one histogram that saw
    /// every observation, bit for bit.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: std::array::from_fn(|i| self.counts[i].wrapping_add(other.counts[i])),
            sum: self.sum.wrapping_add(other.sum),
            max: self.max.max(other.max),
        }
    }

    /// Upper bound of the bucket holding the `q`-quantile observation
    /// (clamped by the exact recorded maximum). Returns 0 on an empty
    /// histogram. The true quantile lies within the returned bucket's
    /// range, i.e. the estimate is at most 2× the true value.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// One exported metric sample.
///
/// The `Histogram` variant inlines its ~0.5 KB snapshot rather than
/// boxing it: samples only exist transiently during a scrape, never in
/// bulk.
#[derive(Clone, Debug)]
#[allow(clippy::large_enum_variant)]
pub enum MetricValue {
    Counter(u64),
    Gauge(u64),
    Histogram(HistogramSnapshot),
}

struct Metric {
    name: String,
    help: String,
    collect: Box<dyn Fn() -> MetricValue + Send + Sync>,
}

/// A set of named metrics, each backed by a collector closure.
///
/// Collectors read the *same* atomics the stats structs read, so the
/// exported totals reconcile exactly with `PoolStats` / `CacheStats`
/// whenever writers are quiescent. The registry mutex guards only the
/// metric list — registration and export — never a recording hot path.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<Vec<Metric>>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// Register a collector. `name` should be a valid Prometheus metric
    /// name (`[a-zA-Z_][a-zA-Z0-9_]*`); counters conventionally end in
    /// `_total`.
    pub fn register(
        &self,
        name: impl Into<String>,
        help: impl Into<String>,
        collect: impl Fn() -> MetricValue + Send + Sync + 'static,
    ) {
        self.metrics.lock().unwrap().push(Metric {
            name: name.into(),
            help: help.into(),
            collect: Box::new(collect),
        });
    }

    /// Sample every collector.
    pub fn collect(&self) -> Vec<(String, String, MetricValue)> {
        self.metrics
            .lock()
            .unwrap()
            .iter()
            .map(|m| (m.name.clone(), m.help.clone(), (m.collect)()))
            .collect()
    }

    /// Sample one metric by name.
    pub fn get(&self, name: &str) -> Option<MetricValue> {
        self.metrics
            .lock()
            .unwrap()
            .iter()
            .find(|m| m.name == name)
            .map(|m| (m.collect)())
    }

    /// Render all metrics in the Prometheus text exposition format.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        for (name, help, value) in self.collect() {
            out.push_str(&format!("# HELP {name} {help}\n"));
            match value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!("# TYPE {name} histogram\n"));
                    let mut cumulative = 0u64;
                    for (i, &c) in h.counts.iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        cumulative += c;
                        let le = bucket_bounds(i).1;
                        out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
                    }
                    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
                    out.push_str(&format!("{name}_sum {}\n", h.sum));
                    out.push_str(&format!("{name}_count {}\n", h.count()));
                }
            }
        }
        out
    }

    /// Render all metrics as a JSON object keyed by metric name.
    pub fn json(&self) -> String {
        let mut out = String::from("{");
        let samples = self.collect();
        for (i, (name, _, value)) in samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!(
                        "\"{name}\":{{\"type\":\"counter\",\"value\":{v}}}"
                    ));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("\"{name}\":{{\"type\":\"gauge\",\"value\":{v}}}"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "\"{name}\":{{\"type\":\"histogram\",\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                        h.count(),
                        h.sum,
                        h.max,
                        h.p50(),
                        h.p95(),
                        h.p99()
                    ));
                }
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_cover_u64_contiguously() {
        assert_eq!(bucket_bounds(0), (0, 0));
        for i in 1..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, bucket_bounds(i - 1).1.wrapping_add(1));
            assert!(lo <= hi);
        }
        assert_eq!(bucket_bounds(BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn record_lands_in_its_bucket() {
        for v in [0u64, 1, 2, 3, 4, 1023, 1024, u64::MAX] {
            let h = Histogram::new();
            h.record(v);
            let snap = h.snapshot();
            let i = snap.counts.iter().position(|&c| c == 1).unwrap();
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi, "{v} not in bucket {i} [{lo},{hi}]");
        }
    }

    #[test]
    fn quantiles_bounded_by_max() {
        let h = Histogram::new();
        for v in [10u64, 20, 30, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 4);
        assert_eq!(s.sum, 1060);
        assert_eq!(s.max, 1000);
        assert!(s.p50() >= 10 && s.p50() <= 31);
        assert_eq!(s.quantile(1.0), 1000);
        assert_eq!(HistogramSnapshot::empty().p99(), 0);
    }

    #[test]
    fn registry_exports_prometheus_and_json() {
        let reg = Registry::new();
        let c = std::sync::Arc::new(Counter::new());
        c.add(5);
        let cc = c.clone();
        reg.register("test_events_total", "events", move || {
            MetricValue::Counter(cc.get())
        });
        let h = std::sync::Arc::new(Histogram::new());
        h.record(3);
        h.record(300);
        let hh = h.clone();
        reg.register("test_latency_us", "latency", move || {
            MetricValue::Histogram(hh.snapshot())
        });
        let text = reg.prometheus_text();
        assert!(text.contains("# TYPE test_events_total counter"));
        assert!(text.contains("test_events_total 5"));
        assert!(text.contains("# TYPE test_latency_us histogram"));
        assert!(text.contains("test_latency_us_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("test_latency_us_sum 303"));
        assert!(text.contains("test_latency_us_count 2"));
        let json = reg.json();
        assert!(json.contains("\"test_events_total\":{\"type\":\"counter\",\"value\":5}"));
        assert!(json.contains("\"count\":2"));
        assert!(matches!(
            reg.get("test_events_total"),
            Some(MetricValue::Counter(5))
        ));
    }
}
