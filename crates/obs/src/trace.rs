//! Structured query traces: a span tree with wall times, numeric
//! attributes and free-form notes, rendered as an `EXPLAIN ANALYZE`-style
//! profile.
//!
//! The tree is stored as a flat arena (`Vec<Span>` with parent links) so
//! building a trace costs a handful of small allocations per query — cheap
//! enough for a slow-query log, and paid only when tracing is requested.

use std::fmt;
use std::time::Instant;

/// One node in a recorded span tree.
#[derive(Clone, Debug)]
pub struct Span {
    label: String,
    parent: Option<usize>,
    wall_ns: u64,
    attrs: Vec<(&'static str, u64)>,
    notes: Vec<String>,
}

impl Span {
    pub fn label(&self) -> &str {
        &self.label
    }

    pub fn parent(&self) -> Option<usize> {
        self.parent
    }

    /// Inclusive wall time of the span in nanoseconds.
    pub fn wall_ns(&self) -> u64 {
        self.wall_ns
    }

    pub fn attrs(&self) -> &[(&'static str, u64)] {
        &self.attrs
    }

    /// Value of a named attribute, if recorded.
    pub fn attr(&self, key: &str) -> Option<u64> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|&(_, v)| v)
    }

    pub fn notes(&self) -> &[String] {
        &self.notes
    }
}

/// A finished span tree.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    spans: Vec<Span>,
}

impl Trace {
    /// All spans in creation order; parents always precede children.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// First span whose label contains `needle` (handy in tests).
    pub fn find(&self, needle: &str) -> Option<&Span> {
        self.spans.iter().find(|s| s.label.contains(needle))
    }

    /// All spans whose label contains `needle`.
    pub fn find_all(&self, needle: &str) -> Vec<&Span> {
        self.spans
            .iter()
            .filter(|s| s.label.contains(needle))
            .collect()
    }

    /// Render the tree as an indented profile. Times are inclusive.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, span) in self.spans.iter().enumerate() {
            let depth = self.depth(i);
            let indent = "  ".repeat(depth);
            let us = span.wall_ns as f64 / 1000.0;
            let _ = fmt::Write::write_fmt(
                &mut out,
                format_args!(
                    "{}{:<w$} {:>9.1}µs",
                    indent,
                    span.label,
                    us,
                    w = 44usize.saturating_sub(indent.len())
                ),
            );
            let shown: Vec<String> = span
                .attrs
                .iter()
                .filter(|&&(_, v)| v != 0)
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            if !shown.is_empty() {
                out.push_str("  [");
                out.push_str(&shown.join(" "));
                out.push(']');
            }
            out.push('\n');
            for note in &span.notes {
                let _ = fmt::Write::write_fmt(&mut out, format_args!("{}  · {}\n", indent, note));
            }
        }
        out
    }

    fn depth(&self, mut idx: usize) -> usize {
        let mut d = 0;
        while let Some(p) = self.spans[idx].parent {
            d += 1;
            idx = p;
        }
        d
    }
}

/// Handle to an open span inside a [`TraceBuilder`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanId(usize);

/// Incrementally records a span tree.
///
/// Spans nest via an explicit stack: [`TraceBuilder::open`] parents the new
/// span under the innermost still-open span, [`TraceBuilder::close`] records
/// its inclusive wall time. Builders are single-threaded by construction
/// (`&mut self` everywhere); cross-thread traces are composed by grafting
/// finished child traces with [`TraceBuilder::adopt`].
pub struct TraceBuilder {
    spans: Vec<Span>,
    starts: Vec<Option<Instant>>,
    stack: Vec<usize>,
}

impl Default for TraceBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceBuilder {
    pub fn new() -> Self {
        TraceBuilder {
            spans: Vec::new(),
            starts: Vec::new(),
            stack: Vec::new(),
        }
    }

    /// Open a span under the innermost open span (or as a root).
    pub fn open(&mut self, label: impl Into<String>) -> SpanId {
        let id = self.spans.len();
        self.spans.push(Span {
            label: label.into(),
            parent: self.stack.last().copied(),
            wall_ns: 0,
            attrs: Vec::new(),
            notes: Vec::new(),
        });
        self.starts.push(Some(Instant::now()));
        self.stack.push(id);
        SpanId(id)
    }

    /// Close `id`, recording its inclusive wall time. Any spans opened after
    /// `id` that are still open are closed too (in stack order).
    pub fn close(&mut self, id: SpanId) {
        while let Some(&top) = self.stack.last() {
            if let Some(start) = self.starts[top].take() {
                self.spans[top].wall_ns = start.elapsed().as_nanos() as u64;
            }
            self.stack.pop();
            if top == id.0 {
                break;
            }
        }
    }

    /// Attach a numeric attribute to a span (open or closed).
    pub fn attr(&mut self, id: SpanId, key: &'static str, value: u64) {
        self.spans[id.0].attrs.push((key, value));
    }

    /// Attach a free-form note to a span (open or closed).
    pub fn note(&mut self, id: SpanId, text: impl Into<String>) {
        self.spans[id.0].notes.push(text.into());
    }

    /// Graft a finished trace under the innermost open span. The child's
    /// root spans are re-parented; relative structure is preserved.
    pub fn adopt(&mut self, child: Trace) {
        let base = self.spans.len();
        let parent = self.stack.last().copied();
        for mut span in child.spans {
            span.parent = match span.parent {
                Some(p) => Some(base + p),
                None => parent,
            };
            self.spans.push(span);
            self.starts.push(None);
        }
    }

    /// Close any still-open spans and return the finished trace.
    pub fn finish(mut self) -> Trace {
        while let Some(&top) = self.stack.last() {
            if let Some(start) = self.starts[top].take() {
                self.spans[top].wall_ns = start.elapsed().as_nanos() as u64;
            }
            self.stack.pop();
        }
        Trace { spans: self.spans }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_and_close() {
        let mut tb = TraceBuilder::new();
        let root = tb.open("root");
        let a = tb.open("child-a");
        tb.attr(a, "entries", 7);
        tb.close(a);
        let b = tb.open("child-b");
        tb.note(b, "fell back");
        tb.close(b);
        tb.close(root);
        let trace = tb.finish();
        assert_eq!(trace.spans().len(), 3);
        assert_eq!(trace.spans()[0].parent(), None);
        assert_eq!(trace.spans()[1].parent(), Some(0));
        assert_eq!(trace.spans()[2].parent(), Some(0));
        assert_eq!(trace.find("child-a").unwrap().attr("entries"), Some(7));
        assert_eq!(trace.find("child-b").unwrap().notes(), ["fell back"]);
    }

    #[test]
    fn close_pops_dangling_children() {
        let mut tb = TraceBuilder::new();
        let root = tb.open("root");
        let _leaky = tb.open("leaky");
        tb.close(root); // closes leaky too
        let next = tb.open("next"); // new root, not a child of leaky
        tb.close(next);
        let trace = tb.finish();
        assert_eq!(trace.find("next").unwrap().parent(), None);
    }

    #[test]
    fn adopt_reparents() {
        let mut child = TraceBuilder::new();
        let c = child.open("seg work");
        let _ = child.open("inner");
        child.close(c);
        let child = child.finish();

        let mut tb = TraceBuilder::new();
        let seg = tb.open("segment 0");
        tb.adopt(child);
        tb.close(seg);
        let trace = tb.finish();
        assert_eq!(trace.find("seg work").unwrap().parent(), Some(0));
        let inner_parent = trace.find("inner").unwrap().parent().unwrap();
        assert_eq!(trace.spans()[inner_parent].label(), "seg work");
    }

    #[test]
    fn render_contains_labels_and_attrs() {
        let mut tb = TraceBuilder::new();
        let root = tb.open("execute");
        let s = tb.open("segment 0");
        tb.attr(s, "entries", 12);
        tb.attr(s, "skipped", 0); // zero attrs are suppressed
        tb.note(s, "pair path: pair-list walk");
        tb.close(s);
        tb.close(root);
        let text = tb.finish().render();
        assert!(text.contains("execute"));
        assert!(text.contains("segment 0"));
        assert!(text.contains("entries=12"));
        assert!(!text.contains("skipped=0"));
        assert!(text.contains("· pair path: pair-list walk"));
        assert!(text.contains("µs"));
    }
}
