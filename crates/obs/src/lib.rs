//! Observability primitives for the ftsl workspace.
//!
//! Three pillars, all std-only and dependency-free so every crate in the
//! workspace (including the vendored-stub build) can link against them:
//!
//! * [`trace`] — a lightweight span tree recorded while a query executes
//!   (parse → plan → per-segment cursor work → top-k merge) and rendered
//!   as an `EXPLAIN ANALYZE`-style profile. Recording is allocation-light
//!   and only happens when explicitly requested; the serving hot path
//!   pays a single branch when tracing is off.
//! * [`metrics`] — lock-free counters, gauges and log-bucketed latency
//!   histograms plus a [`metrics::Registry`] that exports them as
//!   Prometheus text or JSON. Collectors are closures over the *same*
//!   atomics the stats structs read, so exported totals reconcile exactly
//!   with `PoolStats` / `CacheStats`.
//! * [`slowlog`] — a bounded ring buffer capturing the profile of any
//!   query whose wall time exceeds a configurable threshold.

pub mod metrics;
pub mod slowlog;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricValue, Registry};
pub use slowlog::{SlowEntry, SlowLog};
pub use trace::{Span, SpanId, Trace, TraceBuilder};
