//! Histogram algebra, machine-checked: merging per-worker snapshots must
//! behave like one histogram that saw every observation (associative,
//! commutative, count/sum/max-preserving), every recorded value must land
//! in a bucket whose range contains it, and quantile estimates must stay
//! inside the recorded value range with the documented 2× error bound.

use ftsl_obs::metrics::{bucket_bounds, BUCKETS};
use ftsl_obs::{Histogram, HistogramSnapshot};
use proptest::prelude::*;

fn prop_cases() -> u32 {
    std::env::var("FTSL_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(128)
}

fn snap(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

/// Values spread across bucket scales: small latencies, mid-range, and
/// the extremes that exercise the first and last buckets.
fn arb_values() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        prop_oneof![Just(0u64), 1u64..100, 100u64..1_000_000, any::<u64>(),],
        0..64,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(prop_cases()))]

    #[test]
    fn merge_is_associative_and_commutative(
        a in arb_values(),
        b in arb_values(),
        c in arb_values(),
    ) {
        let (sa, sb, sc) = (snap(&a), snap(&b), snap(&c));
        prop_assert_eq!(sa.merge(&sb), sb.merge(&sa));
        prop_assert_eq!(
            sa.merge(&sb).merge(&sc),
            sa.merge(&sb.merge(&sc))
        );
        // Merging equals recording everything into one histogram.
        let mut all = a.clone();
        all.extend(&b);
        all.extend(&c);
        prop_assert_eq!(sa.merge(&sb).merge(&sc), snap(&all));
    }

    #[test]
    fn merge_with_empty_is_identity(a in arb_values()) {
        let s = snap(&a);
        prop_assert_eq!(s.merge(&HistogramSnapshot::empty()), s.clone());
        prop_assert_eq!(HistogramSnapshot::empty().merge(&s), s);
    }

    #[test]
    fn every_value_lands_in_a_containing_bucket(v in any::<u64>()) {
        let s = snap(&[v]);
        prop_assert_eq!(s.count(), 1);
        prop_assert_eq!(s.sum, v);
        prop_assert_eq!(s.max, v);
        let i = s.counts.iter().position(|&c| c == 1).unwrap();
        let (lo, hi) = bucket_bounds(i);
        prop_assert!(lo <= v && v <= hi, "{} outside bucket {} [{},{}]", v, i, lo, hi);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded(values in arb_values()) {
        let s = snap(&values);
        if values.is_empty() {
            prop_assert_eq!(s.quantile(0.5), 0);
            return Ok(());
        }
        let min = *values.iter().min().unwrap();
        let max = *values.iter().max().unwrap();
        let mut prev = 0u64;
        for q in [0.01, 0.25, 0.50, 0.75, 0.95, 0.99, 1.0] {
            let est = s.quantile(q);
            // Monotone in q.
            prop_assert!(est >= prev, "q={} gave {} < {}", q, est, prev);
            prev = est;
            // Never below the smallest or above the largest observation
            // (the estimate is a bucket upper bound clamped by max).
            prop_assert!(est <= max, "q={} gave {} > max {}", q, est, max);
            prop_assert!(est >= min, "q={} gave {} < min {}", q, est, min);
        }
        // The documented error bound: the estimate is the upper bound of
        // the bucket holding the true quantile observation, so it is at
        // least that observation and at most 2× it (clamped by max).
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for (q, idx) in [(0.50, values.len().div_ceil(2)), (0.95, (values.len() * 95).div_ceil(100))] {
            let truth = sorted[idx.clamp(1, values.len()) - 1];
            let est = s.quantile(q);
            prop_assert!(est >= truth, "q={} est {} below true {}", q, est, truth);
            prop_assert!(
                est <= truth.saturating_mul(2).max(truth),
                "q={} est {} above 2x true {}", q, est, truth
            );
        }
    }

    #[test]
    fn bucket_bounds_are_contiguous_and_monotone(i in 1usize..BUCKETS) {
        let (lo, hi) = bucket_bounds(i);
        let (_, prev_hi) = bucket_bounds(i - 1);
        prop_assert_eq!(lo, prev_hi.wrapping_add(1));
        prop_assert!(lo <= hi);
    }
}
