//! Lowering surface queries to the full-text calculus, following the
//! semantics given in Sections 4.1 (BOOL), 4.2 (DIST) and 4.3 (COMP).

use crate::ast::{SurfaceQuery, TokenArg};
use crate::error::LangError;
use ftsl_calculus::ast::{QueryExpr, VarId};
use ftsl_predicates::PredicateRegistry;
use std::collections::HashMap;

/// Lower a surface query to a calculus expression.
pub fn lower(query: &SurfaceQuery, registry: &PredicateRegistry) -> Result<QueryExpr, LangError> {
    let mut ctx = Ctx {
        next: 0,
        scopes: HashMap::new(),
        registry,
    };
    ctx.lower(query)
}

struct Ctx<'a> {
    next: u32,
    /// Surface variable name → current calculus id (names may be rebound by
    /// nested quantifiers; lowering keeps a stack per name).
    scopes: HashMap<String, Vec<VarId>>,
    registry: &'a PredicateRegistry,
}

impl Ctx<'_> {
    fn fresh(&mut self) -> VarId {
        let v = VarId(self.next);
        self.next += 1;
        v
    }

    fn resolve(&self, name: &str) -> Result<VarId, LangError> {
        self.scopes
            .get(name)
            .and_then(|stack| stack.last().copied())
            .ok_or_else(|| LangError::Semantic(format!("unbound variable {name}")))
    }

    fn lower(&mut self, q: &SurfaceQuery) -> Result<QueryExpr, LangError> {
        Ok(match q {
            // 'tok'  =>  ∃p (hasPos ∧ hasToken(p, tok))
            SurfaceQuery::Lit(tok) => {
                let v = self.fresh();
                QueryExpr::Exists(v, Box::new(QueryExpr::HasToken(v, tok.clone())))
            }
            // ANY  =>  ∃p hasPos(p)
            SurfaceQuery::Any => {
                let v = self.fresh();
                QueryExpr::Exists(v, Box::new(QueryExpr::HasPos(v)))
            }
            // var HAS 'tok'  =>  hasToken(var, tok)   (var stays free)
            SurfaceQuery::VarHas(name, tok) => {
                QueryExpr::HasToken(self.resolve(name)?, tok.clone())
            }
            // var HAS ANY  =>  hasPos(var)
            SurfaceQuery::VarHasAny(name) => QueryExpr::HasPos(self.resolve(name)?),
            SurfaceQuery::Pred { name, vars, consts } => {
                let pred = self
                    .registry
                    .lookup(name)
                    .ok_or_else(|| LangError::Semantic(format!("unknown predicate {name}")))?;
                let ids = vars
                    .iter()
                    .map(|v| self.resolve(v))
                    .collect::<Result<Vec<_>, _>>()?;
                QueryExpr::Pred {
                    pred,
                    vars: ids,
                    consts: consts.clone(),
                }
            }
            // Section 4.2: dist(t1, t2, d) => ∃p1 (hasTok? ∧ ∃p2 (hasTok? ∧
            // distance(p1, p2, d))); ANY arguments omit the hasToken atom.
            SurfaceQuery::Dist(a, b, d) => {
                let distance = self
                    .registry
                    .lookup("distance")
                    .ok_or_else(|| LangError::Semantic("distance predicate missing".into()))?;
                let p1 = self.fresh();
                let p2 = self.fresh();
                let dist_atom = QueryExpr::Pred {
                    pred: distance,
                    vars: vec![p1, p2],
                    consts: vec![*d],
                };
                let inner = match b {
                    TokenArg::Lit(t) => QueryExpr::And(
                        Box::new(QueryExpr::HasToken(p2, t.clone())),
                        Box::new(dist_atom),
                    ),
                    TokenArg::Any => dist_atom,
                };
                let inner = QueryExpr::Exists(p2, Box::new(inner));
                let outer = match a {
                    TokenArg::Lit(t) => QueryExpr::And(
                        Box::new(QueryExpr::HasToken(p1, t.clone())),
                        Box::new(inner),
                    ),
                    TokenArg::Any => inner,
                };
                QueryExpr::Exists(p1, Box::new(outer))
            }
            SurfaceQuery::Not(inner) => QueryExpr::Not(Box::new(self.lower(inner)?)),
            SurfaceQuery::And(a, b) => {
                QueryExpr::And(Box::new(self.lower(a)?), Box::new(self.lower(b)?))
            }
            SurfaceQuery::Or(a, b) => {
                QueryExpr::Or(Box::new(self.lower(a)?), Box::new(self.lower(b)?))
            }
            SurfaceQuery::Some(name, inner) => {
                let v = self.fresh();
                self.scopes.entry(name.clone()).or_default().push(v);
                let body = self.lower(inner);
                self.scopes.get_mut(name).unwrap().pop();
                QueryExpr::Exists(v, Box::new(body?))
            }
            SurfaceQuery::Every(name, inner) => {
                let v = self.fresh();
                self.scopes.entry(name.clone()).or_default().push(v);
                let body = self.lower(inner);
                self.scopes.get_mut(name).unwrap().pop();
                QueryExpr::Forall(v, Box::new(body?))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, Mode};
    use ftsl_calculus::interp::Interpreter;
    use ftsl_calculus::CalcQuery;
    use ftsl_model::Corpus;

    fn eval(input: &str, mode: Mode, texts: &[&str]) -> Vec<u32> {
        let reg = PredicateRegistry::with_builtins();
        let q = parse(input, mode).unwrap();
        let expr = lower(&q, &reg).unwrap();
        let corpus = Corpus::from_texts(texts);
        let interp = Interpreter::new(&corpus, &reg);
        interp
            .eval_query(&CalcQuery::new(expr))
            .into_iter()
            .map(|n| n.0)
            .collect()
    }

    #[test]
    fn bool_and_not() {
        let r = eval(
            "'test' AND NOT 'usability'",
            Mode::Bool,
            &["test usability", "test only", "nothing"],
        );
        assert_eq!(r, vec![1]);
    }

    #[test]
    fn any_matches_nonempty_nodes() {
        let r = eval("ANY", Mode::Bool, &["x", "", "y z"]);
        assert_eq!(r, vec![0, 2]);
    }

    #[test]
    fn dist_sugar_semantics() {
        let r = eval(
            "dist('task', 'completion', 1)",
            Mode::Dist,
            &[
                "task completion",          // adjacent: 0 intervening
                "task xx completion",       // 1 intervening
                "task xx yy zz completion", // 3 intervening
                "completion then task",     // reversed, 1 intervening
            ],
        );
        assert_eq!(r, vec![0, 1, 3]);
    }

    #[test]
    fn dist_with_any() {
        // ANY omits the hasToken atom, so p2 may bind to any position —
        // including p1 itself (distance(p,p,0) holds). Every node containing
        // 'a' therefore matches.
        let r = eval("dist('a', ANY, 0)", Mode::Dist, &["a b", "a", "c a"]);
        assert_eq!(r, vec![0, 1, 2]);
    }

    #[test]
    fn comp_theorem3_witness() {
        let r = eval("SOME p1 (NOT p1 HAS 't1')", Mode::Comp, &["t1", "t1 t2"]);
        assert_eq!(r, vec![1]);
    }

    #[test]
    fn comp_theorem5_witness() {
        let r = eval(
            "SOME p1 SOME p2 (p1 HAS 't1' AND p2 HAS 't2' AND NOT distance(p1,p2,0))",
            Mode::Comp,
            &["t1 t2 t1", "t1 t2 t1 t2"],
        );
        assert_eq!(r, vec![1]);
    }

    #[test]
    fn comp_use_case_10_4() {
        // "efficient" then the phrase "task completion" in order with at most
        // 10 intervening tokens (Example 1 / Use Case 10.4), expressed in COMP.
        let query = "SOME p1 SOME p2 SOME p3 (p1 HAS 'efficient' AND p2 HAS 'task' \
                     AND p3 HAS 'completion' AND ordered(p1, p2) AND ordered(p2, p3) \
                     AND distance(p2, p3, 0) AND distance(p1, p2, 10))";
        let r = eval(
            query,
            Mode::Comp,
            &[
                "an efficient task completion process",
                "task completion is efficient",
                "efficient but the task was never about completion of anything",
            ],
        );
        assert_eq!(r, vec![0]);
    }

    #[test]
    fn unbound_variable_is_an_error() {
        let reg = PredicateRegistry::with_builtins();
        let q = parse("p1 HAS 'x'", Mode::Comp).unwrap();
        assert!(matches!(lower(&q, &reg), Err(LangError::Semantic(_))));
    }

    #[test]
    fn unknown_predicate_is_an_error() {
        let reg = PredicateRegistry::with_builtins();
        let q = parse("SOME p1 SOME p2 nosuchpred(p1, p2)", Mode::Comp).unwrap();
        assert!(matches!(lower(&q, &reg), Err(LangError::Semantic(_))));
    }

    #[test]
    fn shadowing_rebinds_names() {
        // Inner SOME p1 shadows the outer one.
        let r = eval(
            "SOME p1 (p1 HAS 'a' AND SOME p1 (p1 HAS 'b'))",
            Mode::Comp,
            &["a b", "a", "b"],
        );
        assert_eq!(r, vec![0]);
    }

    #[test]
    fn every_quantifier() {
        let r = eval("EVERY p1 (p1 HAS 'a')", Mode::Comp, &["a a a", "a b", ""]);
        assert_eq!(r, vec![0, 2]);
    }
}
