//! Recursive-descent parser for the surface languages.
//!
//! Grammar (COMP; BOOL/DIST are mode-restricted subsets):
//!
//! ```text
//! Query   := OrExpr
//! OrExpr  := AndExpr (OR AndExpr)*
//! AndExpr := Unary (AND Unary)*
//! Unary   := NOT Unary | SOME Var Unary | EVERY Var Unary | Primary
//! Primary := '(' Query ')' | StringLiteral | ANY
//!          | Var HAS (StringLiteral | ANY)
//!          | PredName '(' Arg (',' Arg)* ')'
//! Arg     := Var | Integer | StringLiteral | ANY      (dist takes tokens)
//! ```

use crate::ast::{SurfaceQuery, TokenArg};
use crate::error::LangError;
use crate::lexer::{lex, Tok};

/// Which surface language to accept.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// BOOL (Section 4.1): literals, `ANY`, NOT/AND/OR.
    Bool,
    /// DIST (Section 4.2): BOOL plus `dist(Token, Token, Integer)`.
    Dist,
    /// COMP (Section 4.3): the complete language.
    Comp,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Bool => "BOOL",
            Mode::Dist => "DIST",
            Mode::Comp => "COMP",
        }
    }
}

/// Parse `input` in the given language mode.
pub fn parse(input: &str, mode: Mode) -> Result<SurfaceQuery, LangError> {
    let toks = lex(input)?;
    let mut p = Parser { toks, pos: 0, mode };
    let q = p.parse_or()?;
    if p.pos != p.toks.len() {
        return Err(LangError::Parse {
            at: p.pos,
            msg: "trailing input".into(),
        });
    }
    Ok(q)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
    mode: Mode,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<(), LangError> {
        match self.bump() {
            Some(t) if &t == tok => Ok(()),
            other => Err(LangError::Parse {
                at: self.pos.saturating_sub(1),
                msg: format!("expected {what}, found {other:?}"),
            }),
        }
    }

    fn not_in_language(&self, construct: &str) -> LangError {
        LangError::NotInLanguage {
            mode: self.mode.name(),
            construct: construct.to_string(),
        }
    }

    fn parse_or(&mut self) -> Result<SurfaceQuery, LangError> {
        let mut left = self.parse_and()?;
        while self.peek() == Some(&Tok::Or) {
            self.bump();
            let right = self.parse_and()?;
            left = SurfaceQuery::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<SurfaceQuery, LangError> {
        let mut left = self.parse_unary()?;
        while self.peek() == Some(&Tok::And) {
            self.bump();
            let right = self.parse_unary()?;
            left = SurfaceQuery::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<SurfaceQuery, LangError> {
        match self.peek() {
            Some(Tok::Not) => {
                self.bump();
                let inner = self.parse_unary()?;
                Ok(SurfaceQuery::Not(Box::new(inner)))
            }
            Some(Tok::Some) => {
                if self.mode != Mode::Comp {
                    return Err(self.not_in_language("SOME quantifier"));
                }
                self.bump();
                let var = self.parse_var()?;
                let inner = self.parse_unary()?;
                Ok(SurfaceQuery::Some(var, Box::new(inner)))
            }
            Some(Tok::Every) => {
                if self.mode != Mode::Comp {
                    return Err(self.not_in_language("EVERY quantifier"));
                }
                self.bump();
                let var = self.parse_var()?;
                let inner = self.parse_unary()?;
                Ok(SurfaceQuery::Every(var, Box::new(inner)))
            }
            _ => self.parse_primary(),
        }
    }

    fn parse_var(&mut self) -> Result<String, LangError> {
        match self.bump() {
            Some(Tok::Ident(name)) => Ok(name),
            other => Err(LangError::Parse {
                at: self.pos.saturating_sub(1),
                msg: format!("expected variable name, found {other:?}"),
            }),
        }
    }

    fn parse_primary(&mut self) -> Result<SurfaceQuery, LangError> {
        match self.bump() {
            Some(Tok::LParen) => {
                let q = self.parse_or()?;
                self.expect(&Tok::RParen, ")")?;
                Ok(q)
            }
            Some(Tok::Str(lit)) => Ok(SurfaceQuery::Lit(lit)),
            Some(Tok::Any) => Ok(SurfaceQuery::Any),
            Some(Tok::Ident(name)) => match self.peek() {
                Some(Tok::Has) => {
                    if self.mode != Mode::Comp {
                        return Err(self.not_in_language("HAS binding"));
                    }
                    self.bump();
                    match self.bump() {
                        Some(Tok::Str(lit)) => Ok(SurfaceQuery::VarHas(name, lit)),
                        Some(Tok::Any) => Ok(SurfaceQuery::VarHasAny(name)),
                        other => Err(LangError::Parse {
                            at: self.pos.saturating_sub(1),
                            msg: format!("expected token after HAS, found {other:?}"),
                        }),
                    }
                }
                Some(Tok::LParen) => self.parse_call(name),
                other => Err(LangError::Parse {
                    at: self.pos,
                    msg: format!("unexpected {other:?} after identifier {name:?}"),
                }),
            },
            other => Err(LangError::Parse {
                at: self.pos.saturating_sub(1),
                msg: format!("expected a query, found {other:?}"),
            }),
        }
    }

    /// Parse `name(arg, ...)`: either DIST's `dist(tok, tok, int)` sugar or a
    /// COMP position predicate over variables and integers.
    fn parse_call(&mut self, name: String) -> Result<SurfaceQuery, LangError> {
        self.expect(&Tok::LParen, "(")?;
        #[derive(Debug)]
        enum Arg {
            Var(String),
            Int(i64),
            Tok(TokenArg),
        }
        let mut args = Vec::new();
        loop {
            match self.bump() {
                Some(Tok::Ident(v)) => args.push(Arg::Var(v)),
                Some(Tok::Int(i)) => args.push(Arg::Int(i)),
                Some(Tok::Str(s)) => args.push(Arg::Tok(TokenArg::Lit(s))),
                Some(Tok::Any) => args.push(Arg::Tok(TokenArg::Any)),
                other => {
                    return Err(LangError::Parse {
                        at: self.pos.saturating_sub(1),
                        msg: format!("bad predicate argument {other:?}"),
                    })
                }
            }
            match self.bump() {
                Some(Tok::Comma) => continue,
                Some(Tok::RParen) => break,
                other => {
                    return Err(LangError::Parse {
                        at: self.pos.saturating_sub(1),
                        msg: format!("expected ',' or ')', found {other:?}"),
                    })
                }
            }
        }

        let is_dist_sugar = name.eq_ignore_ascii_case("dist")
            && args.len() == 3
            && matches!(&args[0], Arg::Tok(_))
            && matches!(&args[1], Arg::Tok(_))
            && matches!(&args[2], Arg::Int(_));
        if is_dist_sugar {
            if self.mode == Mode::Bool {
                return Err(self.not_in_language("dist(...)"));
            }
            let mut it = args.into_iter();
            let (Some(Arg::Tok(a)), Some(Arg::Tok(b)), Some(Arg::Int(d))) =
                (it.next(), it.next(), it.next())
            else {
                unreachable!("shape checked above");
            };
            return Ok(SurfaceQuery::Dist(a, b, d));
        }

        if self.mode != Mode::Comp {
            return Err(self.not_in_language(&format!("predicate {name}(...)")));
        }
        // COMP predicate: leading vars, trailing ints.
        let mut vars = Vec::new();
        let mut consts = Vec::new();
        for arg in args {
            match arg {
                Arg::Var(v) => {
                    if !consts.is_empty() {
                        return Err(LangError::Parse {
                            at: self.pos,
                            msg: "predicate variables must precede constants".into(),
                        });
                    }
                    vars.push(v);
                }
                Arg::Int(i) => consts.push(i),
                Arg::Tok(_) => {
                    return Err(LangError::Parse {
                        at: self.pos,
                        msg: format!("predicate {name} takes variables, not token literals"),
                    })
                }
            }
        }
        Ok(SurfaceQuery::Pred { name, vars, consts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_bool_example() {
        // Section 4.1: 'test' AND NOT 'usability'
        let q = parse("'test' AND NOT 'usability'", Mode::Bool).unwrap();
        assert_eq!(
            q,
            SurfaceQuery::And(
                Box::new(SurfaceQuery::Lit("test".into())),
                Box::new(SurfaceQuery::Not(Box::new(SurfaceQuery::Lit(
                    "usability".into()
                ))))
            )
        );
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let q = parse("'a' OR 'b' AND 'c'", Mode::Bool).unwrap();
        assert!(matches!(q, SurfaceQuery::Or(..)));
    }

    #[test]
    fn parses_the_comp_theorem5_query() {
        let q = parse(
            "SOME p1 SOME p2 (p1 HAS 't1' AND p2 HAS 't2' AND NOT distance(p1,p2,0))",
            Mode::Comp,
        )
        .unwrap();
        assert!(matches!(q, SurfaceQuery::Some(..)));
        assert_eq!(q.free_vars().len(), 0);
    }

    #[test]
    fn parses_dist_in_dist_mode_only() {
        let ok = parse("dist('task', 'completion', 10)", Mode::Dist).unwrap();
        assert_eq!(
            ok,
            SurfaceQuery::Dist(
                TokenArg::Lit("task".into()),
                TokenArg::Lit("completion".into()),
                10
            )
        );
        assert!(matches!(
            parse("dist('a', 'b', 1)", Mode::Bool),
            Err(LangError::NotInLanguage { .. })
        ));
    }

    #[test]
    fn dist_accepts_any_arguments() {
        let q = parse("dist(ANY, 'b', 2)", Mode::Dist).unwrap();
        assert_eq!(
            q,
            SurfaceQuery::Dist(TokenArg::Any, TokenArg::Lit("b".into()), 2)
        );
    }

    #[test]
    fn bool_mode_rejects_comp_constructs() {
        assert!(matches!(
            parse("SOME p1 (p1 HAS 'x')", Mode::Bool),
            Err(LangError::NotInLanguage { .. })
        ));
        assert!(matches!(
            parse("p1 HAS 'x'", Mode::Bool),
            Err(LangError::NotInLanguage { .. })
        ));
        assert!(matches!(
            parse("ordered(p1, p2)", Mode::Dist),
            Err(LangError::NotInLanguage { .. })
        ));
    }

    #[test]
    fn parenthesized_grouping() {
        let q = parse("('a' OR 'b') AND 'c'", Mode::Bool).unwrap();
        assert!(matches!(q, SurfaceQuery::And(..)));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        assert!(matches!(
            parse("'a' 'b'", Mode::Bool),
            Err(LangError::Parse { .. })
        ));
    }

    #[test]
    fn not_binds_tighter_than_and() {
        let q = parse("NOT 'a' AND 'b'", Mode::Bool).unwrap();
        // (NOT 'a') AND 'b'
        match q {
            SurfaceQuery::And(l, _) => assert!(matches!(*l, SurfaceQuery::Not(_))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn quantifier_scopes_to_unary() {
        // SOME p1 'a' AND 'b' == (SOME p1 'a') AND 'b'
        let q = parse("SOME p1 (p1 HAS 'a') AND 'b'", Mode::Comp).unwrap();
        assert!(matches!(q, SurfaceQuery::And(..)));
    }
}
