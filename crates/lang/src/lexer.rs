//! Lexer shared by all three surface languages.

use crate::error::LangError;

/// A lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Quoted string literal (quotes stripped, content lowercased).
    Str(String),
    /// Bare identifier (variable or predicate name).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Keywords.
    Not,
    /// `AND`.
    And,
    /// `OR`.
    Or,
    /// `SOME`.
    Some,
    /// `EVERY`.
    Every,
    /// `HAS`.
    Has,
    /// `ANY`.
    Any,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `,`.
    Comma,
}

/// Tokenize a query string. Keywords are case-insensitive; string literals
/// use single or double quotes.
pub fn lex(input: &str) -> Result<Vec<Tok>, LangError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            c if c.is_whitespace() => {
                i += 1;
            }
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            ',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            '\'' | '"' => {
                let quote = c;
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != quote {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(LangError::Lex {
                        at: i,
                        msg: "unterminated string".into(),
                    });
                }
                let lit: String = bytes[start..j].iter().collect();
                out.push(Tok::Str(lit.to_lowercase()));
                i = j + 1;
            }
            '-' => {
                // Negative integer literal.
                let start = i;
                let mut j = i + 1;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                if j == i + 1 {
                    return Err(LangError::Lex {
                        at: start,
                        msg: "dangling '-'".into(),
                    });
                }
                let s: String = bytes[start..j].iter().collect();
                out.push(Tok::Int(s.parse().map_err(|_| LangError::Lex {
                    at: start,
                    msg: "bad integer".into(),
                })?));
                i = j;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                let s: String = bytes[start..j].iter().collect();
                out.push(Tok::Int(s.parse().map_err(|_| LangError::Lex {
                    at: start,
                    msg: "bad integer".into(),
                })?));
                i = j;
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                    j += 1;
                }
                let word: String = bytes[start..j].iter().collect();
                out.push(keyword_or_ident(&word));
                i = j;
            }
            other => {
                return Err(LangError::Lex {
                    at: i,
                    msg: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(out)
}

fn keyword_or_ident(word: &str) -> Tok {
    match word.to_ascii_uppercase().as_str() {
        "NOT" => Tok::Not,
        "AND" => Tok::And,
        "OR" => Tok::Or,
        "SOME" => Tok::Some,
        "EVERY" => Tok::Every,
        "HAS" => Tok::Has,
        "ANY" => Tok::Any,
        _ => Tok::Ident(word.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_the_paper_query() {
        let toks = lex("SOME p1 (NOT p1 HAS 't1')").unwrap();
        assert_eq!(
            toks,
            vec![
                Tok::Some,
                Tok::Ident("p1".into()),
                Tok::LParen,
                Tok::Not,
                Tok::Ident("p1".into()),
                Tok::Has,
                Tok::Str("t1".into()),
                Tok::RParen,
            ]
        );
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(
            lex("not And oR").unwrap(),
            vec![Tok::Not, Tok::And, Tok::Or]
        );
    }

    #[test]
    fn string_literals_support_both_quotes() {
        assert_eq!(
            lex(r#"'Task' "Completion""#).unwrap(),
            vec![Tok::Str("task".into()), Tok::Str("completion".into())]
        );
    }

    #[test]
    fn numbers_and_negative_numbers() {
        assert_eq!(lex("10 -3").unwrap(), vec![Tok::Int(10), Tok::Int(-3)]);
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(matches!(lex("'oops"), Err(LangError::Lex { .. })));
    }

    #[test]
    fn predicate_call_shape() {
        let toks = lex("distance(p1, p2, 5)").unwrap();
        assert_eq!(toks[0], Tok::Ident("distance".into()));
        assert_eq!(toks[1], Tok::LParen);
        assert_eq!(toks[3], Tok::Comma);
        assert_eq!(toks[5], Tok::Comma);
        assert_eq!(toks[6], Tok::Int(5));
    }
}
