//! Language classification: place a surface query in the Figure 3 hierarchy.
//!
//! The classifier returns the *cheapest* language class whose grammar (and
//! evaluation restrictions) the query satisfies, so the engine dispatcher can
//! pick the corresponding evaluator:
//!
//! * `BOOL-NONEG` — merge evaluation without `IL_ANY`;
//! * `BOOL` — merge evaluation with `IL_ANY` for `NOT`/`ANY`;
//! * `DIST` — BOOL plus `dist(...)`, evaluated by the PPRED engine;
//! * `PPRED` — positive predicates, `NOT` only on closed subqueries under
//!   `AND`, no `ANY`, single-scan streaming evaluation;
//! * `NPRED` — PPRED plus negative predicates, per-ordering scans;
//! * `COMP` — everything else, materialized algebra evaluation.
//!
//! Documented deviations from the paper's PPRED grammar: (a) `EVERY`
//! classifies as COMP because its evaluation requires `IL_ANY` and negation,
//! contradicting PPRED's stated restrictions; (b) `OR` branches must expose
//! the same free variables to be streamable — otherwise the query is COMP
//! (the general padding of Lemma 2 needs `IL_ANY`).

use crate::ast::SurfaceQuery;
use ftsl_predicates::{PredKind, PredicateRegistry};
use std::fmt;

/// The language classes of Figure 3, ordered by evaluation cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LanguageClass {
    /// BOOL without negation or `ANY`.
    BoolNoNeg,
    /// Full BOOL.
    Bool,
    /// BOOL plus distance sugar.
    Dist,
    /// Positive-predicate subset of COMP.
    Ppred,
    /// Positive and negative predicates.
    Npred,
    /// The complete language.
    Comp,
}

impl fmt::Display for LanguageClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LanguageClass::BoolNoNeg => "BOOL-NONEG",
            LanguageClass::Bool => "BOOL",
            LanguageClass::Dist => "DIST",
            LanguageClass::Ppred => "PPRED",
            LanguageClass::Npred => "NPRED",
            LanguageClass::Comp => "COMP",
        };
        f.write_str(s)
    }
}

/// Classify a surface query.
pub fn classify(query: &SurfaceQuery, registry: &PredicateRegistry) -> LanguageClass {
    if is_bool_noneg(query) {
        LanguageClass::BoolNoNeg
    } else if is_bool(query) {
        LanguageClass::Bool
    } else if is_dist(query) {
        LanguageClass::Dist
    } else if is_pred_class(query, registry, false) {
        LanguageClass::Ppred
    } else if is_pred_class(query, registry, true) {
        LanguageClass::Npred
    } else {
        LanguageClass::Comp
    }
}

/// BOOL-NONEG (Section 5.3): `Query := Token | Query AND NOT Query |
/// Query AND Query | Query OR Query`, `Token := StringLiteral`.
fn is_bool_noneg(q: &SurfaceQuery) -> bool {
    match q {
        SurfaceQuery::Lit(_) => true,
        SurfaceQuery::And(a, b) => {
            let right_ok = match b.as_ref() {
                SurfaceQuery::Not(inner) => is_bool_noneg(inner),
                other => is_bool_noneg(other),
            };
            is_bool_noneg(a) && right_ok
        }
        SurfaceQuery::Or(a, b) => is_bool_noneg(a) && is_bool_noneg(b),
        _ => false,
    }
}

/// BOOL (Section 4.1): literals, `ANY`, NOT/AND/OR anywhere.
fn is_bool(q: &SurfaceQuery) -> bool {
    match q {
        SurfaceQuery::Lit(_) | SurfaceQuery::Any => true,
        SurfaceQuery::Not(a) => is_bool(a),
        SurfaceQuery::And(a, b) | SurfaceQuery::Or(a, b) => is_bool(a) && is_bool(b),
        _ => false,
    }
}

/// DIST (Section 4.2): BOOL plus `dist(Token, Token, Integer)`.
fn is_dist(q: &SurfaceQuery) -> bool {
    match q {
        SurfaceQuery::Lit(_) | SurfaceQuery::Any | SurfaceQuery::Dist(..) => true,
        SurfaceQuery::Not(a) => is_dist(a),
        SurfaceQuery::And(a, b) | SurfaceQuery::Or(a, b) => is_dist(a) && is_dist(b),
        _ => false,
    }
}

/// PPRED/NPRED (Sections 5.5/5.6): COMP restricted to
/// `Query := Token | Query AND NOT Query* | Query AND Query | Query OR Query
/// | SOME Var Query | Preds`, `Token := StringLiteral | Var HAS
/// StringLiteral`, where `Query*` is closed and predicates are positive
/// (PPRED) or positive/negative (NPRED).
fn is_pred_class(q: &SurfaceQuery, registry: &PredicateRegistry, allow_negative: bool) -> bool {
    match q {
        SurfaceQuery::Lit(_) | SurfaceQuery::VarHas(..) => true,
        SurfaceQuery::Dist(..) => true, // lowers to a positive distance pred
        SurfaceQuery::Any | SurfaceQuery::VarHasAny(_) | SurfaceQuery::Every(..) => false,
        SurfaceQuery::Pred { name, .. } => match registry.lookup(name) {
            Some(id) => match registry.get(id).kind() {
                PredKind::Positive => true,
                PredKind::Negative => allow_negative,
                PredKind::General => false,
            },
            None => false,
        },
        SurfaceQuery::Not(_) => false, // bare negation is not in the grammar
        SurfaceQuery::And(a, b) => {
            let right_ok = match b.as_ref() {
                // `AND NOT Query*`: the negated query must be closed.
                SurfaceQuery::Not(inner) => {
                    inner.free_vars().is_empty() && is_pred_class(inner, registry, allow_negative)
                }
                other => is_pred_class(other, registry, allow_negative),
            };
            is_pred_class(a, registry, allow_negative) && right_ok
        }
        SurfaceQuery::Or(a, b) => {
            a.free_vars() == b.free_vars()
                && is_pred_class(a, registry, allow_negative)
                && is_pred_class(b, registry, allow_negative)
        }
        SurfaceQuery::Some(_, inner) => is_pred_class(inner, registry, allow_negative),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, Mode};

    fn class_of(input: &str) -> LanguageClass {
        let reg = PredicateRegistry::with_builtins();
        let q = parse(input, Mode::Comp).unwrap();
        classify(&q, &reg)
    }

    #[test]
    fn plain_conjunctions_are_bool_noneg() {
        assert_eq!(class_of("'a' AND 'b' OR 'c'"), LanguageClass::BoolNoNeg);
        assert_eq!(class_of("'a' AND NOT 'b'"), LanguageClass::BoolNoNeg);
    }

    #[test]
    fn leading_not_or_any_is_full_bool() {
        assert_eq!(class_of("NOT 'a'"), LanguageClass::Bool);
        assert_eq!(class_of("ANY AND 'a'"), LanguageClass::Bool);
        assert_eq!(class_of("'a' OR NOT 'b'"), LanguageClass::Bool);
    }

    #[test]
    fn dist_sugar_classifies_as_dist() {
        assert_eq!(class_of("dist('a', 'b', 5)"), LanguageClass::Dist);
        assert_eq!(class_of("'c' AND dist('a', 'b', 5)"), LanguageClass::Dist);
    }

    #[test]
    fn positive_predicates_are_ppred() {
        assert_eq!(
            class_of("SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'b' AND distance(p1,p2,5))"),
            LanguageClass::Ppred
        );
        assert_eq!(
            class_of(
                "SOME p1 SOME p2 (p1 HAS 'usability' AND p2 HAS 'software' \
                 AND samepara(p1,p2) AND ordered(p1,p2))"
            ),
            LanguageClass::Ppred
        );
    }

    #[test]
    fn closed_negation_under_and_stays_ppred() {
        assert_eq!(
            class_of("SOME p1 (p1 HAS 'a') AND NOT 'b'"),
            LanguageClass::Ppred
        );
    }

    #[test]
    fn open_negation_is_comp() {
        assert_eq!(
            class_of("SOME p1 (p1 HAS 'a' AND NOT distance(p1,p1,0))"),
            LanguageClass::Comp
        );
    }

    #[test]
    fn negative_predicates_are_npred() {
        assert_eq!(
            class_of("SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'b' AND not_distance(p1,p2,40))"),
            LanguageClass::Npred
        );
        assert_eq!(
            class_of("SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'a' AND diffpos(p1,p2))"),
            LanguageClass::Npred
        );
    }

    #[test]
    fn every_and_general_predicates_are_comp() {
        assert_eq!(class_of("EVERY p1 (p1 HAS 'a')"), LanguageClass::Comp);
        assert_eq!(
            class_of("SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'b' AND exact_gap(p1,p2,3))"),
            LanguageClass::Comp
        );
    }

    #[test]
    fn or_with_mismatched_free_vars_is_comp() {
        assert_eq!(
            class_of("SOME p1 ((p1 HAS 'a' OR 'b') AND p1 HAS 'c')"),
            LanguageClass::Comp
        );
        // Same free vars on both branches stays PPRED.
        assert_eq!(
            class_of("SOME p1 ((p1 HAS 'a' OR p1 HAS 'b') AND distance(p1,p1,0))"),
            LanguageClass::Ppred
        );
    }

    #[test]
    fn var_has_any_is_comp() {
        assert_eq!(class_of("SOME p1 (p1 HAS ANY)"), LanguageClass::Comp);
    }

    #[test]
    fn classes_are_ordered_by_cost() {
        assert!(LanguageClass::BoolNoNeg < LanguageClass::Bool);
        assert!(LanguageClass::Bool < LanguageClass::Dist);
        assert!(LanguageClass::Dist < LanguageClass::Ppred);
        assert!(LanguageClass::Ppred < LanguageClass::Npred);
        assert!(LanguageClass::Npred < LanguageClass::Comp);
    }
}
