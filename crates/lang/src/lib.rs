//! # ftsl-lang — the surface full-text search languages
//!
//! Section 4 of the paper defines a family of languages:
//!
//! * **BOOL** (4.1): `Query := Token | NOT Query | Query AND Query |
//!   Query OR Query`, `Token := StringLiteral | ANY` — and its restriction
//!   **BOOL-NONEG** (5.3) without `ANY` and with `NOT` only as `AND NOT`;
//! * **DIST** (4.2): BOOL plus `dist(Token, Token, Integer)`;
//! * **COMP** (4.3): the complete language — position variables (`Var HAS
//!   Token`), quantifiers (`SOME`/`EVERY`), and arbitrary position
//!   predicates.
//!
//! This crate parses all of them with one grammar (restricted by
//! [`Mode`]), lowers the surface AST to the full-text calculus
//! exactly as Sections 4.1–4.3 prescribe, and **classifies** queries into
//! the complexity hierarchy of Figure 3 (BOOL-NONEG, BOOL, DIST, PPRED,
//! NPRED, COMP) so the engine dispatcher can pick the cheapest evaluator.

pub mod ast;
pub mod classify;
pub mod error;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod rewrite;

pub use ast::{SurfaceQuery, TokenArg};
pub use classify::{classify, LanguageClass};
pub use error::LangError;
pub use lower::lower;
pub use parser::{parse, Mode};
pub use rewrite::{map_tokens, Thesaurus};

use ftsl_calculus::CalcQuery;
use ftsl_predicates::PredicateRegistry;

/// Parse (in the given language mode), validate, classify and lower a query
/// in one call. Returns the calculus query and the detected language class.
pub fn compile(
    input: &str,
    mode: Mode,
    registry: &PredicateRegistry,
) -> Result<(CalcQuery, LanguageClass), LangError> {
    let surface = parse(input, mode)?;
    let class = classify(&surface, registry);
    let expr = lower(&surface, registry)?;
    let query = CalcQuery::new(expr);
    ftsl_calculus::safety::check_query(&query, registry)
        .map_err(|e| LangError::Semantic(e.to_string()))?;
    Ok((query, class))
}
