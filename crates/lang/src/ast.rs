//! The shared surface AST (COMP syntax; BOOL and DIST parse into subsets).

use std::collections::BTreeSet;
use std::fmt;

/// A token argument of DIST's `dist(...)` construct.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenArg {
    /// String literal.
    Lit(String),
    /// The universal token `ANY`.
    Any,
}

/// Surface query AST.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SurfaceQuery {
    /// Bare string literal: "the node contains this token".
    Lit(String),
    /// Bare `ANY`: "the node contains some token".
    Any,
    /// `var HAS 'tok'`.
    VarHas(String, String),
    /// `var HAS ANY`.
    VarHasAny(String),
    /// `pred(v1.., c1..)` — a COMP position predicate.
    Pred {
        /// Predicate name (resolved against the registry at lowering).
        name: String,
        /// Position-variable arguments.
        vars: Vec<String>,
        /// Integer constants.
        consts: Vec<i64>,
    },
    /// DIST's `dist(t1, t2, d)` sugar (Section 4.2).
    Dist(TokenArg, TokenArg, i64),
    /// `NOT q`.
    Not(Box<SurfaceQuery>),
    /// `q1 AND q2`.
    And(Box<SurfaceQuery>, Box<SurfaceQuery>),
    /// `q1 OR q2`.
    Or(Box<SurfaceQuery>, Box<SurfaceQuery>),
    /// `SOME var q`.
    Some(String, Box<SurfaceQuery>),
    /// `EVERY var q`.
    Every(String, Box<SurfaceQuery>),
}

impl SurfaceQuery {
    /// Free variable names (used without an enclosing `SOME`/`EVERY`).
    pub fn free_vars(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_free(&mut Vec::new(), &mut out);
        out
    }

    fn collect_free(&self, bound: &mut Vec<String>, out: &mut BTreeSet<String>) {
        match self {
            SurfaceQuery::Lit(_) | SurfaceQuery::Any | SurfaceQuery::Dist(..) => {}
            SurfaceQuery::VarHas(v, _) | SurfaceQuery::VarHasAny(v) => {
                if !bound.contains(v) {
                    out.insert(v.clone());
                }
            }
            SurfaceQuery::Pred { vars, .. } => {
                for v in vars {
                    if !bound.contains(v) {
                        out.insert(v.clone());
                    }
                }
            }
            SurfaceQuery::Not(q) => q.collect_free(bound, out),
            SurfaceQuery::And(a, b) | SurfaceQuery::Or(a, b) => {
                a.collect_free(bound, out);
                b.collect_free(bound, out);
            }
            SurfaceQuery::Some(v, q) | SurfaceQuery::Every(v, q) => {
                bound.push(v.clone());
                q.collect_free(bound, out);
                bound.pop();
            }
        }
    }

    /// Render back to COMP syntax.
    pub fn render(&self) -> String {
        match self {
            SurfaceQuery::Lit(t) => format!("'{t}'"),
            SurfaceQuery::Any => "ANY".into(),
            SurfaceQuery::VarHas(v, t) => format!("{v} HAS '{t}'"),
            SurfaceQuery::VarHasAny(v) => format!("{v} HAS ANY"),
            SurfaceQuery::Pred { name, vars, consts } => {
                let mut args: Vec<String> = vars.clone();
                args.extend(consts.iter().map(|c| c.to_string()));
                format!("{name}({})", args.join(", "))
            }
            SurfaceQuery::Dist(a, b, d) => {
                let ta = match a {
                    TokenArg::Lit(t) => format!("'{t}'"),
                    TokenArg::Any => "ANY".into(),
                };
                let tb = match b {
                    TokenArg::Lit(t) => format!("'{t}'"),
                    TokenArg::Any => "ANY".into(),
                };
                format!("dist({ta}, {tb}, {d})")
            }
            SurfaceQuery::Not(q) => format!("NOT ({})", q.render()),
            SurfaceQuery::And(a, b) => format!("({} AND {})", a.render(), b.render()),
            SurfaceQuery::Or(a, b) => format!("({} OR {})", a.render(), b.render()),
            SurfaceQuery::Some(v, q) => format!("SOME {v} ({})", q.render()),
            SurfaceQuery::Every(v, q) => format!("EVERY {v} ({})", q.render()),
        }
    }
}

impl fmt::Display for SurfaceQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_vars_sees_through_binders() {
        let q = SurfaceQuery::Some(
            "p1".into(),
            Box::new(SurfaceQuery::And(
                Box::new(SurfaceQuery::VarHas("p1".into(), "a".into())),
                Box::new(SurfaceQuery::VarHas("p2".into(), "b".into())),
            )),
        );
        let free: Vec<String> = q.free_vars().into_iter().collect();
        assert_eq!(free, vec!["p2".to_string()]);
    }

    #[test]
    fn render_roundtrips_shape() {
        let q = SurfaceQuery::Some(
            "p1".into(),
            Box::new(SurfaceQuery::Not(Box::new(SurfaceQuery::VarHas(
                "p1".into(),
                "t1".into(),
            )))),
        );
        assert_eq!(q.render(), "SOME p1 (NOT (p1 HAS 't1'))");
    }
}
