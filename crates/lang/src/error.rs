//! Language-layer errors.

use std::fmt;

/// Errors from lexing, parsing or lowering surface queries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LangError {
    /// Lexical error at a byte offset.
    Lex {
        /// Byte offset in the input.
        at: usize,
        /// Description.
        msg: String,
    },
    /// Parse error.
    Parse {
        /// Token index where parsing failed.
        at: usize,
        /// Description.
        msg: String,
    },
    /// A construct is not allowed in the requested language mode.
    NotInLanguage {
        /// The language mode.
        mode: &'static str,
        /// The offending construct.
        construct: String,
    },
    /// Semantic error (unknown predicate, unbound variable, arity, ...).
    Semantic(String),
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Lex { at, msg } => write!(f, "lex error at byte {at}: {msg}"),
            LangError::Parse { at, msg } => write!(f, "parse error at token {at}: {msg}"),
            LangError::NotInLanguage { mode, construct } => {
                write!(f, "{construct} is not part of the {mode} language")
            }
            LangError::Semantic(msg) => write!(f, "semantic error: {msg}"),
        }
    }
}

impl std::error::Error for LangError {}
