//! Query-side rewrites: analysis alignment and thesaurus expansion.
//!
//! * [`map_tokens`] rewrites every token literal in a surface query (used by
//!   the facade to apply the *same* stemming/stop-word analysis the index
//!   used — queries and documents must agree on terms);
//! * [`Thesaurus`] expands a token into the disjunction of its synonyms, the
//!   third extension the paper's conclusion announces. Expansion preserves
//!   the binding variable (`v HAS 'car'` → `(v HAS 'car' OR v HAS 'auto')`),
//!   so PPRED/NPRED queries stay in their class — the `OR` branches expose
//!   identical free variables by construction.

use crate::ast::{SurfaceQuery, TokenArg};
use std::collections::HashMap;

/// Rewrite every token literal with `f`. `f` returning `None` means the
/// token is *stopped*: the literal is replaced by an unsatisfiable
/// sentinel token (stopped terms are absent from the index by construction,
/// so no document can match them — Boolean semantics are preserved rather
/// than silently weakened).
pub fn map_tokens(query: &SurfaceQuery, f: &impl Fn(&str) -> Option<String>) -> SurfaceQuery {
    let apply = |t: &str| f(t).unwrap_or_else(|| "\u{0}stopped\u{0}".to_string());
    match query {
        SurfaceQuery::Lit(t) => SurfaceQuery::Lit(apply(t)),
        SurfaceQuery::Any => SurfaceQuery::Any,
        SurfaceQuery::VarHas(v, t) => SurfaceQuery::VarHas(v.clone(), apply(t)),
        SurfaceQuery::VarHasAny(v) => SurfaceQuery::VarHasAny(v.clone()),
        SurfaceQuery::Pred { name, vars, consts } => SurfaceQuery::Pred {
            name: name.clone(),
            vars: vars.clone(),
            consts: consts.clone(),
        },
        SurfaceQuery::Dist(a, b, d) => {
            let map_arg = |arg: &TokenArg| match arg {
                TokenArg::Lit(t) => TokenArg::Lit(apply(t)),
                TokenArg::Any => TokenArg::Any,
            };
            SurfaceQuery::Dist(map_arg(a), map_arg(b), *d)
        }
        SurfaceQuery::Not(q) => SurfaceQuery::Not(Box::new(map_tokens(q, f))),
        SurfaceQuery::And(a, b) => {
            SurfaceQuery::And(Box::new(map_tokens(a, f)), Box::new(map_tokens(b, f)))
        }
        SurfaceQuery::Or(a, b) => {
            SurfaceQuery::Or(Box::new(map_tokens(a, f)), Box::new(map_tokens(b, f)))
        }
        SurfaceQuery::Some(v, q) => SurfaceQuery::Some(v.clone(), Box::new(map_tokens(q, f))),
        SurfaceQuery::Every(v, q) => SurfaceQuery::Every(v.clone(), Box::new(map_tokens(q, f))),
    }
}

/// A synonym table for query expansion.
#[derive(Clone, Debug, Default)]
pub struct Thesaurus {
    synonyms: HashMap<String, Vec<String>>,
}

impl Thesaurus {
    /// An empty thesaurus (expansion is the identity).
    pub fn new() -> Self {
        Self::default()
    }

    /// Register synonyms for a term (one direction; call twice for
    /// symmetric pairs).
    pub fn add<S: AsRef<str>>(&mut self, term: &str, synonyms: &[S]) {
        self.synonyms
            .entry(term.to_lowercase())
            .or_default()
            .extend(synonyms.iter().map(|s| s.as_ref().to_lowercase()));
    }

    /// The synonyms of a term (not including the term itself).
    pub fn lookup(&self, term: &str) -> &[String] {
        self.synonyms
            .get(&term.to_lowercase())
            .map_or(&[], Vec::as_slice)
    }

    /// Expand every token literal into the disjunction of itself and its
    /// synonyms. `Dist` sugar arguments are expanded by rewriting into the
    /// equivalent COMP form first is unnecessary: `dist` token arguments are
    /// left unexpanded (they already denote a single existential binding;
    /// expanding them would need the COMP form — use COMP syntax for
    /// expanded proximity queries).
    pub fn expand(&self, query: &SurfaceQuery) -> SurfaceQuery {
        match query {
            SurfaceQuery::Lit(t) => {
                let mut q = SurfaceQuery::Lit(t.clone());
                for syn in self.lookup(t) {
                    q = SurfaceQuery::Or(Box::new(q), Box::new(SurfaceQuery::Lit(syn.clone())));
                }
                q
            }
            SurfaceQuery::VarHas(v, t) => {
                let mut q = SurfaceQuery::VarHas(v.clone(), t.clone());
                for syn in self.lookup(t) {
                    q = SurfaceQuery::Or(
                        Box::new(q),
                        Box::new(SurfaceQuery::VarHas(v.clone(), syn.clone())),
                    );
                }
                q
            }
            SurfaceQuery::Any
            | SurfaceQuery::VarHasAny(_)
            | SurfaceQuery::Pred { .. }
            | SurfaceQuery::Dist(..) => query.clone(),
            SurfaceQuery::Not(q) => SurfaceQuery::Not(Box::new(self.expand(q))),
            SurfaceQuery::And(a, b) => {
                SurfaceQuery::And(Box::new(self.expand(a)), Box::new(self.expand(b)))
            }
            SurfaceQuery::Or(a, b) => {
                SurfaceQuery::Or(Box::new(self.expand(a)), Box::new(self.expand(b)))
            }
            SurfaceQuery::Some(v, q) => SurfaceQuery::Some(v.clone(), Box::new(self.expand(q))),
            SurfaceQuery::Every(v, q) => SurfaceQuery::Every(v.clone(), Box::new(self.expand(q))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{classify, LanguageClass};
    use crate::parser::{parse, Mode};
    use ftsl_predicates::PredicateRegistry;

    #[test]
    fn map_tokens_rewrites_all_literal_sites() {
        let q = parse(
            "SOME p1 ('cars' AND p1 HAS 'tested' AND dist('cars', ANY, 2))",
            Mode::Comp,
        )
        .unwrap();
        let mapped = map_tokens(&q, &|t| Some(format!("{t}X")));
        let rendered = mapped.render();
        assert!(
            rendered.contains("'carsx'") || rendered.contains("'carsX'"),
            "{rendered}"
        );
        assert!(rendered.contains("'testedx'") || rendered.contains("'testedX'"));
        assert!(rendered.contains("ANY")); // ANY untouched
    }

    #[test]
    fn stopped_tokens_become_unsatisfiable() {
        let q = parse("'the'", Mode::Bool).unwrap();
        let mapped = map_tokens(&q, &|_| None);
        // The sentinel contains NUL, which no tokenizer output can equal.
        if let SurfaceQuery::Lit(t) = mapped {
            assert!(t.contains('\u{0}'));
        } else {
            panic!("expected literal");
        }
    }

    #[test]
    fn thesaurus_expands_preserving_class() {
        let mut th = Thesaurus::new();
        th.add("car", &["auto", "vehicle"]);
        let reg = PredicateRegistry::with_builtins();

        let q = parse(
            "SOME p1 SOME p2 (p1 HAS 'car' AND p2 HAS 'red' AND distance(p1,p2,3))",
            Mode::Comp,
        )
        .unwrap();
        assert_eq!(classify(&q, &reg), LanguageClass::Ppred);
        let expanded = th.expand(&q);
        // Expansion keeps the query in PPRED: the OR branches share p1.
        assert_eq!(classify(&expanded, &reg), LanguageClass::Ppred);
        let rendered = expanded.render();
        assert!(rendered.contains("'auto'") && rendered.contains("'vehicle'"));
    }

    #[test]
    fn thesaurus_lookup_is_case_insensitive() {
        let mut th = Thesaurus::new();
        th.add("Car", &["Auto"]);
        assert_eq!(th.lookup("cAr"), &["auto".to_string()]);
        assert!(th.lookup("bike").is_empty());
    }
}
