//! Parser/printer roundtrip: `parse(render(q)) == q` for random surface
//! queries, and classification is invariant under the roundtrip.

use ftsl_lang::{classify, parse, Mode, SurfaceQuery, TokenArg};
use ftsl_predicates::PredicateRegistry;
use proptest::prelude::*;

const TOKENS: [&str; 4] = ["alpha", "beta", "gamma", "delta"];
const VARS: [&str; 3] = ["p0", "p1", "p2"];
const PREDS: [(&str, usize); 4] = [
    ("distance", 1),
    ("ordered", 0),
    ("samepara", 0),
    ("not_distance", 1),
];

fn arb_query(depth: u32) -> BoxedStrategy<SurfaceQuery> {
    let leaf = prop_oneof![
        (0..TOKENS.len()).prop_map(|t| SurfaceQuery::Lit(TOKENS[t].to_string())),
        Just(SurfaceQuery::Any),
        (0..VARS.len(), 0..TOKENS.len()).prop_map(|(v, t)| {
            SurfaceQuery::VarHas(VARS[v].to_string(), TOKENS[t].to_string())
        }),
        (0..VARS.len()).prop_map(|v| SurfaceQuery::VarHasAny(VARS[v].to_string())),
        (0..PREDS.len(), 0..VARS.len(), 0..VARS.len(), 0..20i64).prop_map(|(p, a, b, c)| {
            let (name, consts) = PREDS[p];
            SurfaceQuery::Pred {
                name: name.to_string(),
                vars: vec![VARS[a].to_string(), VARS[b].to_string()],
                consts: (0..consts).map(|_| c).collect(),
            }
        }),
        (0..TOKENS.len(), 0..TOKENS.len(), any::<bool>(), 0..12i64).prop_map(
            |(a, b, any_arg, d)| {
                let t1 = TokenArg::Lit(TOKENS[a].to_string());
                let t2 = if any_arg {
                    TokenArg::Any
                } else {
                    TokenArg::Lit(TOKENS[b].to_string())
                };
                SurfaceQuery::Dist(t1, t2, d)
            }
        ),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = arb_query(depth - 1);
    prop_oneof![
        3 => leaf,
        2 => (sub.clone(), sub.clone())
            .prop_map(|(a, b)| SurfaceQuery::And(Box::new(a), Box::new(b))),
        2 => (sub.clone(), sub.clone())
            .prop_map(|(a, b)| SurfaceQuery::Or(Box::new(a), Box::new(b))),
        1 => sub.clone().prop_map(|a| SurfaceQuery::Not(Box::new(a))),
        1 => (0..VARS.len(), sub.clone())
            .prop_map(|(v, a)| SurfaceQuery::Some(VARS[v].to_string(), Box::new(a))),
        1 => (0..VARS.len(), sub)
            .prop_map(|(v, a)| SurfaceQuery::Every(VARS[v].to_string(), Box::new(a))),
    ]
    .boxed()
}

/// Property-case count: `FTSL_PROPTEST_CASES` raises it for the scheduled
/// deep-fuzz CI job; the default keeps PR builds quick.
fn prop_cases() -> u32 {
    std::env::var("FTSL_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(prop_cases()))]

    #[test]
    fn render_parse_roundtrip(q in arb_query(4)) {
        let rendered = q.render();
        let reparsed = parse(&rendered, Mode::Comp)
            .unwrap_or_else(|e| panic!("rendered query failed to parse: {rendered} ({e})"));
        prop_assert_eq!(&reparsed, &q, "roundtrip changed the AST for {}", rendered);
    }

    #[test]
    fn classification_is_stable_under_roundtrip(q in arb_query(3)) {
        let reg = PredicateRegistry::with_builtins();
        let class1 = classify(&q, &reg);
        let reparsed = parse(&q.render(), Mode::Comp).expect("parses");
        let class2 = classify(&reparsed, &reg);
        prop_assert_eq!(class1, class2);
    }

    #[test]
    fn free_vars_stable_under_roundtrip(q in arb_query(3)) {
        let reparsed = parse(&q.render(), Mode::Comp).expect("parses");
        prop_assert_eq!(q.free_vars(), reparsed.free_vars());
    }
}
