//! # ftsl-model — the full-text data model
//!
//! Implements Section 2.1 of *Botev, Amer-Yahia, Shanmugasundaram,
//! "Expressiveness and Performance of Full-Text Search Languages" (EDBT 2006)*:
//! context nodes, tokens, and **positions** as the fundamental unit that
//! full-text search languages manipulate.
//!
//! The formal model is two functions over sets `N` (context nodes), `P`
//! (positions) and `T` (tokens):
//!
//! * `Positions : N -> 2^P` — [`Corpus::positions`]
//! * `Token : P -> T` — [`Corpus::token_at`]
//!
//! Positions are *structured* ([`Position`]): besides the word offset they
//! carry sentence and paragraph ordinals, realizing the paper's remark that
//! "more expressive positions that capture the notions of lines, sentences
//! and paragraphs can be used, and this will enable more sophisticated
//! predicates on positions".

pub mod analysis;
pub mod corpus;
pub mod document;
pub mod node;
pub mod position;
pub mod token;
pub mod tokenizer;

pub use analysis::AnalysisConfig;
pub use corpus::{Corpus, CorpusStats};
pub use document::Document;
pub use node::NodeId;
pub use position::Position;
pub use token::{TokenId, TokenInterner};
pub use tokenizer::{Tokenizer, TokenizerConfig};
