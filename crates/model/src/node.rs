//! Context-node identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a context node (a document, tuple, or XML element — the
/// granularity at which full-text conditions are evaluated; Section 2).
///
/// Node ids are dense: a [`crate::Corpus`] with `n` documents uses ids
/// `0..n`. Inverted-list entries are ordered by `NodeId`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index value.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n: NodeId = 7u32.into();
        assert_eq!(n.index(), 7);
        assert_eq!(n.to_string(), "7");
        assert_eq!(format!("{n:?}"), "n7");
    }

    #[test]
    fn node_ids_order_like_integers() {
        assert!(NodeId(3) < NodeId(10));
        assert_eq!(NodeId(4), NodeId(4));
    }
}
