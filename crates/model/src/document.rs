//! Documents: a context node's token sequence plus metadata.

use crate::node::NodeId;
use crate::position::Position;
use crate::token::TokenId;
use serde::{Deserialize, Serialize};

/// A tokenized context node.
///
/// A document is the concrete realization of one element of `N`: a sequence
/// of `(token, position)` pairs ordered by offset. The optional `label` keeps
/// a human-readable handle (title, file name, element path) for examples and
/// result display.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Document {
    /// The context-node id this document realizes.
    pub node: NodeId,
    /// Human-readable label (not part of the formal model).
    pub label: String,
    /// Token occurrences ordered by position offset.
    pub tokens: Vec<(TokenId, Position)>,
}

impl Document {
    /// Create a document from an already-tokenized sequence.
    ///
    /// # Panics
    /// Panics in debug builds if offsets are not strictly increasing.
    pub fn new(node: NodeId, label: impl Into<String>, tokens: Vec<(TokenId, Position)>) -> Self {
        debug_assert!(
            tokens.windows(2).all(|w| w[0].1.offset < w[1].1.offset),
            "document token offsets must be strictly increasing"
        );
        Document {
            node,
            label: label.into(),
            tokens,
        }
    }

    /// Number of token occurrences (`|Positions(n)|`).
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True iff the document contains no tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// All positions in this document, in offset order.
    pub fn positions(&self) -> impl Iterator<Item = Position> + '_ {
        self.tokens.iter().map(|&(_, p)| p)
    }

    /// The token stored at `pos`, if `pos` is a position of this document.
    ///
    /// Implements the model's `Token : P -> T` function for this node.
    pub fn token_at(&self, pos: Position) -> Option<TokenId> {
        self.tokens
            .binary_search_by_key(&pos.offset, |&(_, p)| p.offset)
            .ok()
            .map(|i| self.tokens[i].0)
    }

    /// Number of *distinct* tokens (the `unique_tokens(n)` term of the
    /// TF-IDF formulas in Section 3.1).
    pub fn unique_tokens(&self) -> usize {
        let mut ids: Vec<TokenId> = self.tokens.iter().map(|&(t, _)| t).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Number of occurrences of `token` (the `occurs(n, t)` term of
    /// Section 3.1).
    pub fn occurs(&self, token: TokenId) -> usize {
        self.tokens.iter().filter(|&&(t, _)| t == token).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Document {
        Document::new(
            NodeId(0),
            "d",
            vec![
                (TokenId(0), Position::flat(0)),
                (TokenId(1), Position::flat(1)),
                (TokenId(0), Position::flat(2)),
            ],
        )
    }

    #[test]
    fn token_at_finds_by_offset() {
        let d = doc();
        assert_eq!(d.token_at(Position::flat(1)), Some(TokenId(1)));
        assert_eq!(d.token_at(Position::flat(2)), Some(TokenId(0)));
        assert_eq!(d.token_at(Position::flat(9)), None);
    }

    #[test]
    fn counting_helpers() {
        let d = doc();
        assert_eq!(d.len(), 3);
        assert_eq!(d.unique_tokens(), 2);
        assert_eq!(d.occurs(TokenId(0)), 2);
        assert_eq!(d.occurs(TokenId(1)), 1);
        assert_eq!(d.occurs(TokenId(5)), 0);
    }

    #[test]
    fn positions_iterates_in_order() {
        let d = doc();
        let offs: Vec<u32> = d.positions().map(|p| p.offset).collect();
        assert_eq!(offs, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn non_monotone_offsets_panic_in_debug() {
        Document::new(
            NodeId(0),
            "bad",
            vec![
                (TokenId(0), Position::flat(3)),
                (TokenId(1), Position::flat(1)),
            ],
        );
    }
}
