//! Token analysis: stemming and stop-words.
//!
//! The paper's conclusion lists "new full-text primitives such as stemming,
//! thesaurus and stop-words" as planned extensions of the model. Stemming
//! and stop-words are *index-time* token transformations (this module);
//! thesaurus expansion is a *query-time* rewrite (`ftsl-lang`). Queries must
//! be analyzed with the same configuration as the index — the `ftsl-core`
//! facade wires that up.

use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// A lightweight Porter-style suffix stripper.
///
/// Implements the high-value subset of Porter's algorithm (plural
/// reduction, -ed/-ing removal with consonant handling, common -ization
/// class suffixes, y→i, final-e stripping). The property that matters — and
/// that the tests pin down — is *conflation*: morphological variants of a
/// word map to the same index term. It is not a certified Porter
/// implementation; the goal is the model primitive, not linguistic
/// perfection.
pub fn stem(word: &str) -> String {
    let w = word.to_lowercase();
    if w.len() <= 3 {
        return w;
    }
    let w = step1a(&w);
    let w = step1b(&w);
    let w = step_y_to_i(&w);
    let w = step_suffixes(&w);
    strip_final_e(&w)
}

fn is_vowel(bytes: &[u8], i: usize) -> bool {
    match bytes[i] {
        b'a' | b'e' | b'i' | b'o' | b'u' => true,
        b'y' => i > 0 && !is_vowel(bytes, i - 1),
        _ => false,
    }
}

fn has_vowel(word: &str) -> bool {
    let bytes = word.as_bytes();
    (0..bytes.len()).any(|i| is_vowel(bytes, i))
}

/// Plurals: sses -> ss, ies -> i, ss -> ss, s -> "".
fn step1a(w: &str) -> String {
    if let Some(stemmed) = w.strip_suffix("sses") {
        return format!("{stemmed}ss");
    }
    if let Some(stemmed) = w.strip_suffix("ies") {
        return format!("{stemmed}i");
    }
    if w.ends_with("ss") {
        return w.to_string();
    }
    if let Some(stemmed) = w.strip_suffix('s') {
        if stemmed.len() > 2 {
            return stemmed.to_string();
        }
    }
    w.to_string()
}

/// -eed/-ed/-ing removal.
fn step1b(w: &str) -> String {
    if let Some(stemmed) = w.strip_suffix("eed") {
        if has_vowel(stemmed) {
            return format!("{stemmed}ee");
        }
        return w.to_string();
    }
    for suffix in ["ing", "ed"] {
        if let Some(stemmed) = w.strip_suffix(suffix) {
            if !has_vowel(stemmed) || stemmed.len() < 2 {
                return w.to_string();
            }
            // Restore 'e' for common cases: at/bl/iz endings (e.g.
            // "completing" -> "complet" -> "complete").
            if stemmed.ends_with("at") || stemmed.ends_with("bl") || stemmed.ends_with("iz") {
                return format!("{stemmed}e");
            }
            // Undouble final consonants (e.g. "running" -> "run").
            let b = stemmed.as_bytes();
            if b.len() >= 2
                && b[b.len() - 1] == b[b.len() - 2]
                && !matches!(b[b.len() - 1], b'l' | b's' | b'z')
                && !is_vowel(b, b.len() - 1)
            {
                return stemmed[..stemmed.len() - 1].to_string();
            }
            return stemmed.to_string();
        }
    }
    w.to_string()
}

/// The common derivational suffixes (a pragmatic subset of Porter steps
/// 2-4).
fn step_suffixes(w: &str) -> String {
    const MAPPINGS: &[(&str, &str)] = &[
        ("ization", "ize"),
        ("ational", "ate"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("iveness", "ive"),
        ("tional", "tion"),
        ("biliti", "ble"),
        ("lessli", "less"),
        ("entli", "ent"),
        ("ation", "ate"),
        ("alism", "al"),
        ("aliti", "al"),
        ("ousli", "ous"),
        ("iviti", "ive"),
        ("fulli", "ful"),
        ("ness", ""),
        ("ment", ""),
        ("able", ""),
        ("ible", ""),
        ("ance", ""),
        ("ence", ""),
        ("izer", "ize"),
        ("ator", "ate"),
        ("alli", "al"),
    ];
    for (suffix, replacement) in MAPPINGS {
        if let Some(stemmed) = w.strip_suffix(suffix) {
            if stemmed.len() >= 3 {
                return format!("{stemmed}{replacement}");
            }
        }
    }
    w.to_string()
}

/// -y -> -i after a consonant (uniform with step1a's ies->i), applied
/// *before* the suffix mappings so "usability" reaches the -biliti rule.
fn step_y_to_i(w: &str) -> String {
    if let Some(stemmed) = w.strip_suffix('y') {
        let b = stemmed.as_bytes();
        if stemmed.len() >= 3 && !b.is_empty() && !is_vowel(b, b.len() - 1) {
            return format!("{stemmed}i");
        }
    }
    w.to_string()
}

/// Porter's step 5a in spirit: drop a final 'e' from long-enough stems so
/// that "complete"/"completing" and "normalize"/"normalization" conflate.
fn strip_final_e(w: &str) -> String {
    if w.len() >= 5 {
        if let Some(stemmed) = w.strip_suffix('e') {
            return stemmed.to_string();
        }
    }
    w.to_string()
}

/// The classic Van Rijsbergen-style English stop-word list (abridged to the
/// high-frequency core).
pub fn default_stop_words() -> HashSet<String> {
    [
        "a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "if", "in", "into", "is",
        "it", "no", "not", "of", "on", "or", "such", "that", "the", "their", "then", "there",
        "these", "they", "this", "to", "was", "will", "with",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

/// Index- and query-time token analysis configuration.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct AnalysisConfig {
    /// Apply the [`stem`] function to every token.
    pub stem: bool,
    /// Drop these tokens entirely (empty set = keep everything).
    pub stop_words: HashSet<String>,
}

impl AnalysisConfig {
    /// No stemming, no stop-words (the default used across the paper's
    /// formal sections).
    pub fn none() -> Self {
        Self::default()
    }

    /// Stemming plus the default English stop-word list.
    pub fn english() -> Self {
        AnalysisConfig {
            stem: true,
            stop_words: default_stop_words(),
        }
    }

    /// Analyze one token: `None` means the token is stopped.
    pub fn analyze(&self, token: &str) -> Option<String> {
        let lowered = token.to_lowercase();
        if self.stop_words.contains(&lowered) {
            return None;
        }
        Some(if self.stem { stem(&lowered) } else { lowered })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plural_reduction() {
        assert_eq!(stem("caresses"), "caress");
        assert_eq!(stem("ponies"), "poni");
        assert_eq!(stem("caress"), "caress");
        assert_eq!(stem("cats"), "cat");
    }

    #[test]
    fn ed_ing_removal() {
        assert_eq!(stem("plastered"), "plaster");
        assert_eq!(stem("motoring"), "motor");
        assert_eq!(stem("running"), "run");
        assert_eq!(stem("sing"), "sing"); // no vowel before -ing
        assert_eq!(stem("agreed"), "agre"); // final-e stripped, like "agree"
    }

    #[test]
    fn query_and_document_forms_conflate() {
        // The reason stemming matters: morphological variants hash to the
        // same index term.
        assert_eq!(stem("tests"), stem("test"));
        assert_eq!(stem("testing"), stem("test"));
        assert_eq!(stem("tested"), stem("test"));
        assert_eq!(stem("usability"), stem("usable"));
        assert_eq!(stem("completing"), stem("complete"));
        assert_eq!(stem("agreed"), stem("agree"));
        assert_eq!(stem("normalization"), stem("normalize"));
        assert_eq!(stem("relational"), stem("relate"));
    }

    #[test]
    fn derivational_suffixes() {
        assert_eq!(stem("usefulness"), "useful");
        assert_eq!(stem("adjustment"), "adjust");
        assert_eq!(stem("usability"), "usabl");
    }

    #[test]
    fn short_words_untouched() {
        assert_eq!(stem("is"), "is");
        assert_eq!(stem("be"), "be");
        assert_eq!(stem("sky"), "sky");
    }

    #[test]
    fn analysis_config_stops_and_stems() {
        let cfg = AnalysisConfig::english();
        assert_eq!(cfg.analyze("The"), None);
        assert_eq!(cfg.analyze("Tests"), Some("test".to_string()));
        let none = AnalysisConfig::none();
        assert_eq!(none.analyze("The"), Some("the".to_string()));
        assert_eq!(none.analyze("Tests"), Some("tests".to_string()));
    }
}
