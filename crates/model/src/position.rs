//! Token positions within a context node.
//!
//! The paper's Figure 1 uses plain integers; our positions additionally carry
//! sentence and paragraph ordinals so that `samesent`/`samepara` predicates
//! are computable from a pair of positions alone. All orderings and distance
//! arithmetic are defined on the word `offset`; sentence and paragraph
//! ordinals are monotonically non-decreasing in the offset, an invariant the
//! positive-predicate advance functions rely on.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A token position within a single context node.
///
/// `offset` is the 0-based word ordinal, `sentence` and `paragraph` are the
/// 0-based ordinals of the enclosing sentence/paragraph.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Position {
    /// 0-based word offset inside the context node.
    pub offset: u32,
    /// 0-based ordinal of the sentence containing this token.
    pub sentence: u32,
    /// 0-based ordinal of the paragraph containing this token.
    pub paragraph: u32,
}

impl Position {
    /// A position carrying only a word offset (sentence/paragraph 0). Useful
    /// for flat, structure-less text and for tests.
    pub const fn flat(offset: u32) -> Self {
        Position {
            offset,
            sentence: 0,
            paragraph: 0,
        }
    }

    /// Construct a fully structured position.
    pub const fn new(offset: u32, sentence: u32, paragraph: u32) -> Self {
        Position {
            offset,
            sentence,
            paragraph,
        }
    }

    /// Number of tokens strictly between `self` and `other`.
    ///
    /// This is the quantity bounded by the paper's `distance(p1, p2, d)`
    /// predicate: "there are at most `dist` intervening tokens". Two equal or
    /// adjacent offsets have zero intervening tokens.
    pub fn intervening(&self, other: &Position) -> u32 {
        let lo = self.offset.min(other.offset);
        let hi = self.offset.max(other.offset);
        (hi - lo).saturating_sub(1)
    }

    /// True iff `self` occurs strictly before `other` (the `ordered`
    /// predicate of Section 2.2).
    pub fn before(&self, other: &Position) -> bool {
        self.offset < other.offset
    }

    /// True iff both positions lie in the same paragraph.
    pub fn same_paragraph(&self, other: &Position) -> bool {
        self.paragraph == other.paragraph
    }

    /// True iff both positions lie in the same sentence.
    pub fn same_sentence(&self, other: &Position) -> bool {
        self.sentence == other.sentence
    }
}

impl PartialOrd for Position {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Positions are totally ordered by word offset. Sentence and paragraph are
/// functions of the offset within one node, so comparing offsets alone is
/// consistent with the full struct.
impl Ord for Position {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.offset.cmp(&other.offset)
    }
}

impl fmt::Debug for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(s{},p{})", self.offset, self.sentence, self.paragraph)
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intervening_counts_tokens_strictly_between() {
        // Paper Section 5.5.1: (39, 42) has 2 intervening tokens, within d=5.
        let a = Position::flat(39);
        let b = Position::flat(42);
        assert_eq!(a.intervening(&b), 2);
        assert_eq!(b.intervening(&a), 2);
    }

    #[test]
    fn intervening_is_zero_for_adjacent_and_equal() {
        assert_eq!(Position::flat(5).intervening(&Position::flat(6)), 0);
        assert_eq!(Position::flat(5).intervening(&Position::flat(5)), 0);
    }

    #[test]
    fn ordering_is_by_offset() {
        let a = Position::new(3, 9, 9);
        let b = Position::new(4, 0, 0);
        assert!(a < b);
        assert!(a.before(&b));
        assert!(!b.before(&a));
        assert!(!a.before(&a));
    }

    #[test]
    fn structural_equality_predicates() {
        let a = Position::new(1, 2, 3);
        let b = Position::new(9, 2, 3);
        let c = Position::new(10, 4, 3);
        assert!(a.same_sentence(&b));
        assert!(a.same_paragraph(&b));
        assert!(!a.same_sentence(&c));
        assert!(a.same_paragraph(&c));
    }

    #[test]
    fn display_and_debug() {
        let p = Position::new(7, 1, 0);
        assert_eq!(p.to_string(), "7");
        assert_eq!(format!("{p:?}"), "7(s1,p0)");
    }
}
