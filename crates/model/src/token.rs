//! Token identifiers and string interning.
//!
//! The paper treats `T` (the token set) abstractly, and several theorems turn
//! on whether `T` is finite or infinite. Concretely we intern token strings
//! into dense [`TokenId`]s; the interner doubles as the corpus vocabulary.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Dense identifier for an interned token string.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TokenId(pub u32);

impl TokenId {
    /// The raw index value.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TokenId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Bidirectional map between token strings and [`TokenId`]s.
///
/// Token text is normalized to lowercase on interning, matching the common IR
/// convention (the paper's examples are case-insensitive: `Usability` and
/// `usability` match the same queries).
#[derive(Clone, Default, Serialize, Deserialize)]
pub struct TokenInterner {
    by_name: HashMap<String, TokenId>,
    names: Vec<String>,
}

impl TokenInterner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `text`, returning its id (allocating one if unseen).
    pub fn intern(&mut self, text: &str) -> TokenId {
        let normalized = normalize(text);
        if let Some(&id) = self.by_name.get(&normalized) {
            return id;
        }
        let id = TokenId(self.names.len() as u32);
        self.by_name.insert(normalized.clone(), id);
        self.names.push(normalized);
        id
    }

    /// Look up an existing token without interning. Returns `None` for
    /// strings never seen in the corpus — such tokens have empty inverted
    /// lists, which queries must handle gracefully.
    pub fn get(&self, text: &str) -> Option<TokenId> {
        self.by_name.get(&normalize(text)).copied()
    }

    /// The string for an interned id.
    pub fn name(&self, id: TokenId) -> &str {
        &self.names[id.index()]
    }

    /// Number of distinct tokens interned (the vocabulary size `|T|`).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True iff no tokens have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate over all `(TokenId, &str)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TokenId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, s)| (TokenId(i as u32), s.as_str()))
    }
}

fn normalize(text: &str) -> String {
    text.to_lowercase()
}

impl fmt::Debug for TokenInterner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TokenInterner({} tokens)", self.names.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut i = TokenInterner::new();
        let a = i.intern("usability");
        let b = i.intern("usability");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn interning_is_case_insensitive() {
        let mut i = TokenInterner::new();
        let a = i.intern("Usability");
        let b = i.intern("usability");
        assert_eq!(a, b);
        assert_eq!(i.name(a), "usability");
    }

    #[test]
    fn get_does_not_allocate_new_ids() {
        let mut i = TokenInterner::new();
        i.intern("test");
        assert!(i.get("test").is_some());
        assert!(i.get("missing").is_none());
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut i = TokenInterner::new();
        let ids: Vec<TokenId> = ["a", "b", "c"].iter().map(|s| i.intern(s)).collect();
        assert_eq!(ids, vec![TokenId(0), TokenId(1), TokenId(2)]);
        let collected: Vec<&str> = i.iter().map(|(_, s)| s).collect();
        assert_eq!(collected, vec!["a", "b", "c"]);
    }
}
