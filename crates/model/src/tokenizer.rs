//! Text tokenization with sentence and paragraph tracking.
//!
//! Converts raw text into the `(token, position)` sequence of the formal
//! model. Word boundaries are runs of non-alphanumeric characters; sentence
//! boundaries are `.`, `!`, `?`; paragraph boundaries are blank lines.
//! Everything is configurable through [`TokenizerConfig`].

use crate::analysis::AnalysisConfig;
use crate::position::Position;
use crate::token::{TokenId, TokenInterner};

/// Configuration for [`Tokenizer`].
#[derive(Clone, Debug)]
pub struct TokenizerConfig {
    /// Characters that terminate a sentence.
    pub sentence_terminators: Vec<char>,
    /// Treat blank lines as paragraph separators.
    pub paragraphs_on_blank_line: bool,
    /// Drop tokens shorter than this many characters (0 keeps everything).
    pub min_token_len: usize,
    /// Stemming / stop-word analysis applied to every token.
    pub analysis: AnalysisConfig,
}

impl Default for TokenizerConfig {
    fn default() -> Self {
        TokenizerConfig {
            sentence_terminators: vec!['.', '!', '?'],
            paragraphs_on_blank_line: true,
            min_token_len: 1,
            analysis: AnalysisConfig::none(),
        }
    }
}

/// Tokenizer producing `(TokenId, Position)` pairs.
#[derive(Clone, Debug, Default)]
pub struct Tokenizer {
    config: TokenizerConfig,
}

impl Tokenizer {
    /// Tokenizer with default configuration.
    pub fn new() -> Self {
        Tokenizer {
            config: TokenizerConfig::default(),
        }
    }

    /// Tokenizer with custom configuration.
    pub fn with_config(config: TokenizerConfig) -> Self {
        Tokenizer { config }
    }

    /// Tokenize `text`, interning tokens into `interner`.
    ///
    /// The returned vector is ordered by offset; offsets are consecutive
    /// starting at 0, and sentence/paragraph ordinals are non-decreasing.
    pub fn tokenize(&self, text: &str, interner: &mut TokenInterner) -> Vec<(TokenId, Position)> {
        let mut out = Vec::new();
        let mut offset: u32 = 0;
        let mut sentence: u32 = 0;
        let mut paragraph: u32 = 0;
        // Tracks whether we saw any token since the last boundary, so that
        // repeated terminators/blank lines don't create empty sentences.
        let mut tokens_in_sentence = false;
        let mut tokens_in_paragraph = false;

        let mut word = String::new();
        let mut prev_was_newline = false;

        let flush = |word: &mut String,
                     out: &mut Vec<(TokenId, Position)>,
                     interner: &mut TokenInterner,
                     offset: &mut u32,
                     sentence: u32,
                     paragraph: u32| {
            if word.len() >= self.config.min_token_len && !word.is_empty() {
                if let Some(analyzed) = self.config.analysis.analyze(word) {
                    let id = interner.intern(&analyzed);
                    out.push((id, Position::new(*offset, sentence, paragraph)));
                    *offset += 1;
                }
                // Stopped tokens do not consume an offset, consistent
                // with min_token_len filtering: positions stay dense.
            }
            word.clear();
        };

        for ch in text.chars() {
            if ch.is_alphanumeric() {
                word.push(ch);
                prev_was_newline = false;
                continue;
            }
            let had_word = !word.is_empty();
            flush(
                &mut word,
                &mut out,
                interner,
                &mut offset,
                sentence,
                paragraph,
            );
            if had_word {
                tokens_in_sentence = true;
                tokens_in_paragraph = true;
            }
            if self.config.sentence_terminators.contains(&ch) {
                if tokens_in_sentence {
                    sentence += 1;
                    tokens_in_sentence = false;
                }
                prev_was_newline = false;
            } else if ch == '\n' {
                if prev_was_newline && self.config.paragraphs_on_blank_line {
                    if tokens_in_paragraph {
                        paragraph += 1;
                        tokens_in_paragraph = false;
                        if tokens_in_sentence {
                            sentence += 1;
                            tokens_in_sentence = false;
                        }
                    }
                    prev_was_newline = false;
                } else {
                    prev_was_newline = true;
                }
            } else if !ch.is_whitespace() {
                prev_was_newline = false;
            }
        }
        flush(
            &mut word,
            &mut out,
            interner,
            &mut offset,
            sentence,
            paragraph,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(text: &str) -> (Vec<(TokenId, Position)>, TokenInterner) {
        let mut interner = TokenInterner::new();
        let t = Tokenizer::new().tokenize(text, &mut interner);
        (t, interner)
    }

    #[test]
    fn simple_words_get_consecutive_offsets() {
        let (t, i) = toks("usability of a software");
        assert_eq!(t.len(), 4);
        let names: Vec<&str> = t.iter().map(|(id, _)| i.name(*id)).collect();
        assert_eq!(names, vec!["usability", "of", "a", "software"]);
        let offsets: Vec<u32> = t.iter().map(|(_, p)| p.offset).collect();
        assert_eq!(offsets, vec![0, 1, 2, 3]);
    }

    #[test]
    fn sentences_split_on_terminators() {
        let (t, _) = toks("One two. Three four! Five?");
        let sentences: Vec<u32> = t.iter().map(|(_, p)| p.sentence).collect();
        assert_eq!(sentences, vec![0, 0, 1, 1, 2]);
    }

    #[test]
    fn paragraphs_split_on_blank_lines() {
        let (t, _) = toks("alpha beta.\n\ngamma delta");
        let paragraphs: Vec<u32> = t.iter().map(|(_, p)| p.paragraph).collect();
        assert_eq!(paragraphs, vec![0, 0, 1, 1]);
    }

    #[test]
    fn repeated_terminators_do_not_create_empty_sentences() {
        let (t, _) = toks("hi... there");
        let sentences: Vec<u32> = t.iter().map(|(_, p)| p.sentence).collect();
        assert_eq!(sentences, vec![0, 1]);
    }

    #[test]
    fn punctuation_splits_words_without_emitting_tokens() {
        let (t, i) = toks("task-completion, efficient");
        let names: Vec<&str> = t.iter().map(|(id, _)| i.name(*id)).collect();
        assert_eq!(names, vec!["task", "completion", "efficient"]);
    }

    #[test]
    fn min_token_len_filters_short_tokens() {
        let config = TokenizerConfig {
            min_token_len: 3,
            ..Default::default()
        };
        let mut interner = TokenInterner::new();
        let t = Tokenizer::with_config(config).tokenize("a an the cat", &mut interner);
        let names: Vec<&str> = t.iter().map(|(id, _)| interner.name(*id)).collect();
        assert_eq!(names, vec!["the", "cat"]);
        // Offsets stay dense even when tokens are dropped.
        let offsets: Vec<u32> = t.iter().map(|(_, p)| p.offset).collect();
        assert_eq!(offsets, vec![0, 1]);
    }

    #[test]
    fn empty_and_whitespace_only_inputs() {
        assert!(toks("").0.is_empty());
        assert!(toks("  \n\n  \t ").0.is_empty());
    }

    #[test]
    fn analysis_stems_and_stops_at_index_time() {
        use crate::analysis::AnalysisConfig;
        let config = TokenizerConfig {
            analysis: AnalysisConfig::english(),
            ..Default::default()
        };
        let mut interner = TokenInterner::new();
        let t = Tokenizer::with_config(config).tokenize("the tests are testing", &mut interner);
        let names: Vec<&str> = t.iter().map(|(id, _)| interner.name(*id)).collect();
        // "the"/"are" stopped; "tests"/"testing" conflate to "test".
        assert_eq!(names, vec!["test", "test"]);
        let offsets: Vec<u32> = t.iter().map(|(_, p)| p.offset).collect();
        assert_eq!(offsets, vec![0, 1]);
    }

    #[test]
    fn structure_ordinals_are_monotone() {
        let (t, _) = toks("A b c. D e.\n\nF g! H i.\n\nJ k");
        for w in t.windows(2) {
            assert!(w[0].1.offset < w[1].1.offset);
            assert!(w[0].1.sentence <= w[1].1.sentence);
            assert!(w[0].1.paragraph <= w[1].1.paragraph);
        }
    }
}
