//! The corpus: the set `N` of context nodes together with the token
//! vocabulary, realizing the formal model's `Positions` and `Token` functions.

use crate::document::Document;
use crate::node::NodeId;
use crate::position::Position;
use crate::token::{TokenId, TokenInterner};
use crate::tokenizer::Tokenizer;
use serde::{Deserialize, Serialize};

/// A collection of context nodes sharing one token vocabulary.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Corpus {
    documents: Vec<Document>,
    interner: TokenInterner,
}

impl Corpus {
    /// An empty corpus.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty corpus that starts from an existing vocabulary.
    ///
    /// Token ids interned by `interner` stay valid in the new corpus, which
    /// is what lets a segmented index keep one *prefix-consistent* global
    /// vocabulary: every segment's corpus begins from a clone of the shared
    /// interner, so a given `TokenId` means the same string in every
    /// segment that knows it.
    pub fn with_interner(interner: TokenInterner) -> Self {
        Corpus {
            documents: Vec::new(),
            interner,
        }
    }

    /// Build a corpus by tokenizing raw texts with the default tokenizer.
    pub fn from_texts<S: AsRef<str>>(texts: &[S]) -> Self {
        let mut corpus = Corpus::new();
        let tokenizer = Tokenizer::new();
        for text in texts {
            corpus.add_text_with(&tokenizer, text.as_ref());
        }
        corpus
    }

    /// Tokenize and append one document; returns its node id.
    pub fn add_text(&mut self, text: &str) -> NodeId {
        self.add_text_with(&Tokenizer::new(), text)
    }

    /// Tokenize with a specific tokenizer and append; returns the node id.
    pub fn add_text_with(&mut self, tokenizer: &Tokenizer, text: &str) -> NodeId {
        let node = NodeId(self.documents.len() as u32);
        let tokens = tokenizer.tokenize(text, &mut self.interner);
        self.documents
            .push(Document::new(node, format!("doc{}", node.0), tokens));
        node
    }

    /// Append an already-tokenized document built from `(token_str, position)`
    /// pairs. Used by generators that synthesize token streams directly.
    pub fn add_tokens(
        &mut self,
        label: impl Into<String>,
        tokens: Vec<(TokenId, Position)>,
    ) -> NodeId {
        let node = NodeId(self.documents.len() as u32);
        self.documents.push(Document::new(node, label, tokens));
        node
    }

    /// Intern a token string (for generators building token streams).
    pub fn intern(&mut self, text: &str) -> TokenId {
        self.interner.intern(text)
    }

    /// Number of context nodes (`cnodes` in the complexity model).
    pub fn len(&self) -> usize {
        self.documents.len()
    }

    /// True iff the corpus has no documents.
    pub fn is_empty(&self) -> bool {
        self.documents.is_empty()
    }

    /// All node ids, in order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.documents.len() as u32).map(NodeId)
    }

    /// The document realizing `node`.
    pub fn document(&self, node: NodeId) -> &Document {
        &self.documents[node.index()]
    }

    /// All documents in node order.
    pub fn documents(&self) -> &[Document] {
        &self.documents
    }

    /// The shared token interner (vocabulary).
    pub fn interner(&self) -> &TokenInterner {
        &self.interner
    }

    /// `Positions(node)`: the positions of a context node, in offset order.
    pub fn positions(&self, node: NodeId) -> Vec<Position> {
        self.document(node).positions().collect()
    }

    /// `Token(pos)` within `node`.
    pub fn token_at(&self, node: NodeId, pos: Position) -> Option<TokenId> {
        self.document(node).token_at(pos)
    }

    /// Look up a token id by string without interning.
    pub fn token_id(&self, text: &str) -> Option<TokenId> {
        self.interner.get(text)
    }

    /// Compute corpus-wide statistics.
    pub fn stats(&self) -> CorpusStats {
        let total_positions: usize = self.documents.iter().map(Document::len).sum();
        CorpusStats {
            cnodes: self.documents.len(),
            vocabulary: self.interner.len(),
            total_positions,
            pos_per_cnode: self.documents.iter().map(Document::len).max().unwrap_or(0),
        }
    }
}

/// Corpus-level size statistics (a subset of the Section 5.1.2 parameters;
/// the inverted-list-side parameters live in `ftsl-index`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorpusStats {
    /// Number of context nodes (`cnodes`).
    pub cnodes: usize,
    /// Number of distinct tokens (`|T|`).
    pub vocabulary: usize,
    /// Total token occurrences across all nodes.
    pub total_positions: usize,
    /// Maximum positions in any single node (`pos_per_cnode`).
    pub pos_per_cnode: usize,
}

/// The Figure 1 book document from the paper, usable by tests and examples
/// across the workspace.
pub fn figure1_book_text() -> &'static str {
    "book id usability\n\
     author Elina Rose author\n\
     content Usability Definition\n\
     p Usability of a software measures how well the software supports \
     achieving an efficient software. p\n\n\
     p A software is tested for usability by a task completion experiment. \
     More on usability of a software follows. p\n\
     content book"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_texts_assigns_dense_node_ids() {
        let c = Corpus::from_texts(&["one two", "three"]);
        assert_eq!(c.len(), 2);
        let ids: Vec<NodeId> = c.node_ids().collect();
        assert_eq!(ids, vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn positions_and_token_at_realize_the_model() {
        let c = Corpus::from_texts(&["alpha beta alpha"]);
        let n = NodeId(0);
        let ps = c.positions(n);
        assert_eq!(ps.len(), 3);
        let alpha = c.token_id("alpha").unwrap();
        assert_eq!(c.token_at(n, ps[0]), Some(alpha));
        assert_eq!(c.token_at(n, ps[2]), Some(alpha));
    }

    #[test]
    fn vocabulary_is_shared_across_documents() {
        let c = Corpus::from_texts(&["shared word", "shared again"]);
        assert_eq!(c.stats().vocabulary, 3);
    }

    #[test]
    fn stats_reports_sizes() {
        let c = Corpus::from_texts(&["a b c", "d e"]);
        let s = c.stats();
        assert_eq!(s.cnodes, 2);
        assert_eq!(s.total_positions, 5);
        assert_eq!(s.pos_per_cnode, 3);
    }

    #[test]
    fn figure1_document_contains_expected_tokens() {
        let c = Corpus::from_texts(&[figure1_book_text()]);
        for tok in ["usability", "software", "efficient", "task", "completion"] {
            assert!(c.token_id(tok).is_some(), "missing token {tok}");
        }
        // "usability" occurs multiple times, like the paper's Figure 2 list.
        let usability = c.token_id("usability").unwrap();
        assert!(c.document(NodeId(0)).occurs(usability) >= 3);
    }
}
