//! Corpus statistics needed by the scoring formulas of Section 3.1.

use ftsl_index::InvertedIndex;
use ftsl_model::{Corpus, NodeId, TokenId};
use std::sync::Arc;

/// Precomputed per-corpus statistics: `df(t)`, `db_size`,
/// `unique_tokens(n)`, and the L2 norm `‖n‖₂` of every node's TF-IDF vector.
#[derive(Clone, Debug)]
pub struct ScoreStats {
    /// Number of context nodes (`db_size`).
    pub db_size: usize,
    /// Document frequency per token id. Shared (`Arc`) so the per-segment
    /// views of a live snapshot all reference one merged vector instead of
    /// cloning it per segment.
    df: Arc<Vec<usize>>,
    /// `unique_tokens(n)` per node.
    unique_tokens: Vec<usize>,
    /// `‖n‖₂` per node (L2 norm of the node's tf·idf vector).
    l2_norm: Vec<f64>,
    /// `max_n 1/(unique_tokens(n)·‖n‖₂)` over non-empty nodes — the
    /// node-dependent factor of the TF-IDF per-occurrence mass, maximized
    /// once so scored cursors can turn a term-frequency ceiling into a
    /// corpus-wide score upper bound.
    max_node_boost: f64,
}

impl ScoreStats {
    /// Compute statistics for a corpus and its index.
    pub fn compute(corpus: &Corpus, index: &InvertedIndex) -> Self {
        let vocab = corpus.interner().len();
        let df: Vec<usize> = (0..vocab).map(|t| index.df(TokenId(t as u32))).collect();
        Self::compute_with_df(corpus, df, corpus.len())
    }

    /// [`Self::compute_with_df`] over an already-shared `df` vector (no
    /// copy — every per-segment view of a live snapshot holds the same
    /// allocation).
    pub fn compute_with_shared_df(corpus: &Corpus, df: Arc<Vec<usize>>, db_size: usize) -> Self {
        Self::compute_inner(corpus, df, db_size)
    }

    /// Compute per-node statistics for `corpus` against *externally
    /// supplied* collection-level numbers: `df` by token id (may be longer
    /// than the corpus vocabulary) and `db_size`.
    ///
    /// This is how one segment of a live index gets statistics that are
    /// correct for the *whole* collection: token ids are prefix-consistent
    /// across segments, so the global live `df` vector indexes directly,
    /// and every `unique_tokens`/`‖n‖₂` value comes out exactly as a
    /// monolithic index over the same live documents would compute it.
    /// Documents whose tokens have `df = 0` (possible only for tombstoned
    /// documents, whose tokens may survive nowhere) get an infinite norm —
    /// harmless, since nothing live ever reads their rows.
    pub fn compute_with_df(corpus: &Corpus, df: Vec<usize>, db_size: usize) -> Self {
        Self::compute_inner(corpus, Arc::new(df), db_size)
    }

    fn compute_inner(corpus: &Corpus, df: Arc<Vec<usize>>, db_size: usize) -> Self {
        let num_docs = corpus.len();
        let vocab = corpus.interner().len();
        debug_assert!(df.len() >= vocab, "df vector must cover the vocabulary");

        let mut unique_tokens = Vec::with_capacity(num_docs);
        let mut l2_norm = Vec::with_capacity(num_docs);
        let mut max_node_boost = 0.0f64;
        let mut counts: Vec<u32> = vec![0; vocab];
        let mut touched: Vec<TokenId> = Vec::new();
        for doc in corpus.documents() {
            for &(t, _) in &doc.tokens {
                if counts[t.index()] == 0 {
                    touched.push(t);
                }
                counts[t.index()] += 1;
            }
            let unique = touched.len().max(1);
            let mut sum_sq = 0.0;
            for &t in &touched {
                let tf = f64::from(counts[t.index()]) / unique as f64;
                let idf = idf_value(db_size, df[t.index()]);
                sum_sq += (tf * idf) * (tf * idf);
                counts[t.index()] = 0;
            }
            touched.clear();
            unique_tokens.push(unique);
            let norm = if sum_sq > 0.0 { sum_sq.sqrt() } else { 1.0 };
            l2_norm.push(norm);
            if sum_sq > 0.0 {
                max_node_boost = max_node_boost.max(1.0 / (unique as f64 * norm));
            }
        }
        ScoreStats {
            db_size,
            df,
            unique_tokens,
            l2_norm,
            max_node_boost,
        }
    }

    /// `df(t)`: number of nodes containing the token (0 if out of
    /// vocabulary).
    pub fn df(&self, token: TokenId) -> usize {
        self.df.get(token.index()).copied().unwrap_or(0)
    }

    /// `idf(t) = ln(1 + db_size/df(t))` (Section 3.1); 0 for unseen tokens.
    pub fn idf(&self, token: TokenId) -> f64 {
        let df = self.df(token);
        if df == 0 {
            0.0
        } else {
            idf_value(self.db_size, df)
        }
    }

    /// `unique_tokens(n)`.
    pub fn unique_tokens(&self, node: NodeId) -> usize {
        self.unique_tokens[node.index()]
    }

    /// `‖n‖₂`.
    pub fn l2_norm(&self, node: NodeId) -> f64 {
        self.l2_norm[node.index()]
    }

    /// `max_n 1/(unique_tokens(n)·‖n‖₂)` over non-empty nodes (0 for an
    /// empty corpus): multiplied by a token weight and a term-frequency
    /// ceiling it bounds any node's TF-IDF contribution from that token,
    /// which is what makes list- and block-level top-k pruning sound.
    pub fn max_node_boost(&self) -> f64 {
        self.max_node_boost
    }
}

pub(crate) fn idf_value(db_size: usize, df: usize) -> f64 {
    (1.0 + db_size as f64 / df as f64).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsl_index::IndexBuilder;

    #[test]
    fn df_and_idf_follow_the_formulas() {
        let corpus = Corpus::from_texts(&["a b", "a", "c"]);
        let index = IndexBuilder::new().build(&corpus);
        let stats = ScoreStats::compute(&corpus, &index);
        let a = corpus.token_id("a").unwrap();
        let c = corpus.token_id("c").unwrap();
        assert_eq!(stats.df(a), 2);
        assert_eq!(stats.df(c), 1);
        assert!((stats.idf(a) - (1.0f64 + 3.0 / 2.0).ln()).abs() < 1e-12);
        // Rarer tokens have higher idf.
        assert!(stats.idf(c) > stats.idf(a));
    }

    #[test]
    fn unique_tokens_and_norms() {
        let corpus = Corpus::from_texts(&["a a b", ""]);
        let index = IndexBuilder::new().build(&corpus);
        let stats = ScoreStats::compute(&corpus, &index);
        assert_eq!(stats.unique_tokens(NodeId(0)), 2);
        assert!(stats.l2_norm(NodeId(0)) > 0.0);
        // Empty nodes get a safe norm of 1.
        assert_eq!(stats.l2_norm(NodeId(1)), 1.0);
    }

    #[test]
    fn out_of_vocabulary_token_scores_zero() {
        let corpus = Corpus::from_texts(&["a"]);
        let index = IndexBuilder::new().build(&corpus);
        let stats = ScoreStats::compute(&corpus, &index);
        assert_eq!(stats.idf(TokenId(999)), 0.0);
    }
}
