//! Textbook cosine TF-IDF, computed directly from the corpus — the oracle
//! for Theorem 2.

use crate::stats::ScoreStats;
use crate::tfidf::TfIdfModel;
use ftsl_model::{Corpus, NodeId};

/// Classic cosine TF-IDF of every node for a bag-of-tokens query:
/// `score(n) = Σ_t w(t)·tf(n,t)·idf(t)/(‖n‖₂·‖q‖₂)` (Section 3.1's
/// formula), with the model's weights. Nodes scoring 0 are omitted; output
/// is in ranking order ([`crate::topk::rank_cmp`]: descending score via
/// `total_cmp`, ascending node id on ties) so "the first k of the oracle"
/// is well-defined for differential top-k tests.
pub fn classic_tfidf<S: AsRef<str>>(
    query_tokens: &[S],
    corpus: &Corpus,
    stats: &ScoreStats,
    model: &TfIdfModel,
) -> Vec<(NodeId, f64)> {
    let mut distinct: Vec<String> = query_tokens
        .iter()
        .map(|t| t.as_ref().to_lowercase())
        .collect();
    distinct.sort();
    distinct.dedup();

    let mut out = Vec::new();
    for node in corpus.node_ids() {
        let doc = corpus.document(node);
        if doc.is_empty() {
            continue;
        }
        let unique = stats.unique_tokens(node) as f64;
        let mut score = 0.0;
        for t in &distinct {
            let Some(id) = corpus.token_id(t) else {
                continue;
            };
            let occurs = doc.occurs(id) as f64;
            if occurs == 0.0 {
                continue;
            }
            let tf = occurs / unique;
            let idf = stats.idf(id);
            score += model.weight(t) * tf * idf;
        }
        score /= stats.l2_norm(node) * model.query_norm();
        if score > 0.0 {
            out.push((node, score));
        }
    }
    crate::topk::sort_ranked(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsl_index::IndexBuilder;

    #[test]
    fn classic_scores_favor_focused_documents() {
        let corpus = Corpus::from_texts(&[
            "usability",                       // short, on-topic
            "usability plus many other words", // diluted
            "entirely different content",
        ]);
        let index = IndexBuilder::new().build(&corpus);
        let stats = ScoreStats::compute(&corpus, &index);
        let model = TfIdfModel::for_query(&["usability"], &corpus, &stats);
        let scores = classic_tfidf(&["usability"], &corpus, &stats, &model);
        assert_eq!(scores.len(), 2);
        let s0 = scores.iter().find(|(n, _)| n.0 == 0).unwrap().1;
        let s1 = scores.iter().find(|(n, _)| n.0 == 1).unwrap().1;
        assert!(
            s0 > s1,
            "focused doc should outrank diluted doc: {s0} vs {s1}"
        );
    }
}
