//! Bounded top-k collection and total-order ranking.
//!
//! [`TopK`] is the collector every streaming scored evaluator drains into: a
//! min-heap of the `k` best `(node, score)` pairs seen so far, whose worst
//! kept entry is the **pruning threshold** — a candidate (or a score upper
//! bound) that cannot beat it can be discarded, or entire index blocks
//! skipped, without affecting the result.
//!
//! Ranking uses [`f64::total_cmp`] with ascending [`NodeId`] as the
//! tie-break, via [`rank_cmp`] / [`sort_ranked`]. `total_cmp` (not
//! `partial_cmp(..).unwrap_or(Equal)`) matters: if a NaN ever leaks into a
//! score it ranks deterministically instead of silently scrambling the
//! comparator's transitivity.

use ftsl_model::NodeId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Ranking order for `(node, score)` hits: descending score
/// ([`f64::total_cmp`]), ascending node id on ties.
pub fn rank_cmp(a: &(NodeId, f64), b: &(NodeId, f64)) -> Ordering {
    b.1.total_cmp(&a.1).then(a.0.cmp(&b.0))
}

/// Sort hits into ranking order (see [`rank_cmp`]).
pub fn sort_ranked(hits: &mut [(NodeId, f64)]) {
    hits.sort_by(rank_cmp);
}

/// One kept entry. The `Ord` implementation orders by *goodness* (higher
/// score first, smaller node on ties), so the `Reverse` min-heap root is the
/// worst kept entry.
#[derive(Clone, Copy, Debug, PartialEq)]
struct Kept {
    node: NodeId,
    score: f64,
}

impl Eq for Kept {}

impl PartialOrd for Kept {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Kept {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score
            .total_cmp(&other.score)
            .then(other.node.cmp(&self.node))
    }
}

/// A bounded collector of the `k` best `(node, score)` pairs.
///
/// Matches the exhaustive oracles' ordering exactly: the kept set equals the
/// first `k` entries of the full result sorted by [`rank_cmp`], including
/// tie behavior (equal scores are won by the smaller node id).
///
/// ```
/// use ftsl_model::NodeId;
/// use ftsl_scoring::topk::TopK;
///
/// let mut topk = TopK::new(2);
/// for (n, s) in [(5, 0.3), (9, 0.9), (2, 0.3), (7, 0.5)] {
///     topk.insert(NodeId(n), s);
/// }
/// // Node 2 beats node 5 on the 0.3 tie; 0.5 then evicts both.
/// assert_eq!(
///     topk.into_ranked(),
///     vec![(NodeId(9), 0.9), (NodeId(7), 0.5)],
/// );
/// ```
#[derive(Clone, Debug)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<std::cmp::Reverse<Kept>>,
}

impl TopK {
    /// An empty collector keeping at most `k` entries.
    pub fn new(k: usize) -> Self {
        TopK {
            k,
            heap: BinaryHeap::with_capacity(k.saturating_add(1)),
        }
    }

    /// Empty the collector and rebound it to `k`, keeping the heap's
    /// allocation. A serving worker resets one collector per query instead
    /// of constructing a new one, so the steady-state top-k path does not
    /// touch the allocator (see [`Self::drain_ranked`] for the matching
    /// extraction).
    pub fn reset(&mut self, k: usize) {
        self.k = k;
        self.heap.clear();
        if self.heap.capacity() < k.saturating_add(1) {
            self.heap.reserve(k.saturating_add(1) - self.heap.len());
        }
    }

    /// The current pruning threshold: the worst kept score once `k` entries
    /// are held, `None` while the collector still has room (nothing can be
    /// pruned yet).
    pub fn threshold(&self) -> Option<f64> {
        (self.heap.len() >= self.k.max(1))
            .then(|| self.heap.peek().map_or(f64::NEG_INFINITY, |w| w.0.score))
    }

    /// Whether an exact candidate `(node, score)` would enter the kept set.
    pub fn would_accept(&self, node: NodeId, score: f64) -> bool {
        if self.k == 0 {
            return false;
        }
        if self.heap.len() < self.k {
            return true;
        }
        let worst = self.heap.peek().expect("full heap").0;
        match score.total_cmp(&worst.score) {
            Ordering::Greater => true,
            Ordering::Equal => node < worst.node,
            Ordering::Less => false,
        }
    }

    /// Whether *any* candidate with score ≤ `bound` could still enter the
    /// kept set — the sound pruning test for score upper bounds (the
    /// candidate's node id is unknown, so score ties are optimistically
    /// assumed to win).
    pub fn could_enter(&self, bound: f64) -> bool {
        if self.k == 0 {
            return false;
        }
        if self.heap.len() < self.k {
            return true;
        }
        bound >= self.heap.peek().expect("full heap").0.score
    }

    /// Offer a candidate; keeps it (evicting the worst) iff it ranks among
    /// the best `k` seen. Returns whether it was kept.
    pub fn insert(&mut self, node: NodeId, score: f64) -> bool {
        if !self.would_accept(node, score) {
            return false;
        }
        self.heap.push(std::cmp::Reverse(Kept { node, score }));
        if self.heap.len() > self.k {
            self.heap.pop();
        }
        true
    }

    /// Number of entries currently kept.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no entries are kept.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drain into ranking order (best first; see [`rank_cmp`]).
    pub fn into_ranked(mut self) -> Vec<(NodeId, f64)> {
        self.drain_ranked()
    }

    /// Drain into ranking order (best first) while keeping the collector —
    /// and its heap allocation — alive for [`Self::reset`] and the next
    /// query. Identical output to [`Self::into_ranked`] by construction.
    pub fn drain_ranked(&mut self) -> Vec<(NodeId, f64)> {
        let mut out: Vec<(NodeId, f64)> =
            self.heap.drain().map(|e| (e.0.node, e.0.score)).collect();
        sort_ranked(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_exactly_the_first_k_of_the_sorted_order() {
        let hits: Vec<(NodeId, f64)> = (0..100)
            .map(|i| (NodeId(i), f64::from((i * 37) % 11)))
            .collect();
        let mut oracle = hits.clone();
        sort_ranked(&mut oracle);
        for k in [0, 1, 3, 10, 99, 100, 200] {
            let mut topk = TopK::new(k);
            for &(n, s) in &hits {
                topk.insert(n, s);
            }
            assert_eq!(
                topk.into_ranked(),
                oracle[..k.min(oracle.len())].to_vec(),
                "k = {k}"
            );
        }
    }

    #[test]
    fn tie_breaks_prefer_smaller_node_ids() {
        let mut topk = TopK::new(2);
        topk.insert(NodeId(8), 0.5);
        topk.insert(NodeId(3), 0.5);
        topk.insert(NodeId(1), 0.5);
        assert_eq!(topk.into_ranked(), vec![(NodeId(1), 0.5), (NodeId(3), 0.5)]);
    }

    #[test]
    fn threshold_appears_once_full_and_guides_pruning() {
        let mut topk = TopK::new(2);
        assert_eq!(topk.threshold(), None);
        assert!(topk.could_enter(f64::NEG_INFINITY));
        topk.insert(NodeId(0), 0.9);
        topk.insert(NodeId(1), 0.4);
        assert_eq!(topk.threshold(), Some(0.4));
        assert!(!topk.could_enter(0.3)); // strictly below the worst kept
        assert!(topk.could_enter(0.4)); // could still win the node tie-break
        assert!(topk.would_accept(NodeId(0), 0.4)); // smaller node than kept 1
        assert!(!topk.would_accept(NodeId(5), 0.4));
    }

    #[test]
    fn nan_scores_rank_deterministically() {
        // total_cmp puts NaN above +inf; the point is determinism, not
        // placement: inserting NaN never corrupts the heap ordering.
        let mut topk = TopK::new(3);
        topk.insert(NodeId(0), f64::NAN);
        topk.insert(NodeId(1), 1.0);
        topk.insert(NodeId(2), 2.0);
        topk.insert(NodeId(3), 3.0);
        let ranked = topk.into_ranked();
        assert_eq!(ranked.len(), 3);
        assert!(ranked[0].1.is_nan());
        assert_eq!(ranked[1], (NodeId(3), 3.0));
        assert_eq!(ranked[2], (NodeId(2), 2.0));
    }

    #[test]
    fn reset_reuses_the_collector_without_changing_results() {
        let hits: Vec<(NodeId, f64)> = (0..100)
            .map(|i| (NodeId(i), f64::from((i * 37) % 11)))
            .collect();
        let mut oracle = hits.clone();
        sort_ranked(&mut oracle);
        let mut topk = TopK::new(7);
        for k in [3usize, 10, 0, 7] {
            topk.reset(k);
            for &(n, s) in &hits {
                topk.insert(n, s);
            }
            assert_eq!(
                topk.drain_ranked(),
                oracle[..k.min(oracle.len())].to_vec(),
                "k = {k}"
            );
            assert!(topk.is_empty(), "drain empties the collector");
        }
    }

    #[test]
    fn zero_k_accepts_nothing() {
        let mut topk = TopK::new(0);
        assert!(!topk.insert(NodeId(0), 1.0));
        assert!(!topk.could_enter(f64::INFINITY));
        assert!(topk.into_ranked().is_empty());
    }
}
