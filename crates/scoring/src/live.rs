//! Collection-wide scoring statistics over a live, segmented index.
//!
//! TF-IDF is global twice over: a node's score needs `idf(t)` (document
//! frequencies across the *whole* collection) and its own L2 norm — which
//! itself sums idf values of every token the node contains. A single
//! segment of a [`Snapshot`] knows neither. [`SnapshotStats`] computes the
//! merged numbers once per snapshot — live `df` summed per token id across
//! segments (token ids are prefix-consistent, see `ftsl_index::live`),
//! tombstoned documents subtracted, `db_size` = live documents — and then
//! derives a per-segment [`ScoreStats`] from them, so every engine scores a
//! segment's local nodes *exactly* as a monolithic index over the same live
//! documents would: bit-identical idf, norms, and therefore scores.

use crate::stats::{idf_value, ScoreStats};
use crate::{PraModel, TfIdfModel};
use ftsl_index::Snapshot;
use ftsl_model::TokenId;

/// Merged, tombstone-aware scoring statistics for one [`Snapshot`], plus
/// the per-segment [`ScoreStats`] views the evaluators consume.
#[derive(Clone, Debug)]
pub struct SnapshotStats {
    db_size: usize,
    /// Live document frequency by (prefix-consistent) token id, shared
    /// with every per-segment [`ScoreStats`] view (one allocation total).
    df: std::sync::Arc<Vec<usize>>,
    per_segment: Vec<ScoreStats>,
}

impl SnapshotStats {
    /// Compute merged statistics for a snapshot. Cost is one pass over the
    /// segment vocabularies plus one pass over *tombstoned* documents'
    /// tokens — live documents are never rescanned for `df`.
    pub fn compute(snapshot: &Snapshot) -> Self {
        let db_size = snapshot.live_doc_count();
        let vocab = snapshot.widest_interner().map_or(0, |i| i.len());
        let mut df = vec![0usize; vocab];
        for seg in snapshot.segments() {
            let data = seg.data();
            for (t, slot) in df
                .iter_mut()
                .enumerate()
                .take(data.corpus().interner().len())
            {
                *slot += data.index().df(TokenId(t as u32));
            }
            for local in seg.deletes().iter_deleted() {
                let doc = data.document(local);
                let mut tokens: Vec<TokenId> = doc.tokens.iter().map(|&(t, _)| t).collect();
                tokens.sort_unstable();
                tokens.dedup();
                for t in tokens {
                    df[t.index()] -= 1;
                }
            }
        }
        let df = std::sync::Arc::new(df);
        let per_segment = snapshot
            .segments()
            .iter()
            .map(|seg| {
                ScoreStats::compute_with_shared_df(
                    seg.data().corpus(),
                    std::sync::Arc::clone(&df),
                    db_size,
                )
            })
            .collect();
        SnapshotStats {
            db_size,
            df,
            per_segment,
        }
    }

    /// Live documents in the snapshot (`db_size` of the scoring formulas).
    pub fn db_size(&self) -> usize {
        self.db_size
    }

    /// Live document frequency of a token id (0 when out of range).
    pub fn df_id(&self, token: TokenId) -> usize {
        self.df.get(token.index()).copied().unwrap_or(0)
    }

    /// `idf(t)` from the live numbers; 0 for tokens with no live document
    /// (including tokens that only ever appeared in tombstoned documents —
    /// a monolithic rebuild would not know them at all).
    pub fn idf_id(&self, token: TokenId) -> f64 {
        let df = self.df_id(token);
        if df == 0 {
            0.0
        } else {
            idf_value(self.db_size, df)
        }
    }

    /// The per-segment [`ScoreStats`] (same order as
    /// [`Snapshot::segments`]): local-node norms computed against the
    /// merged `df`/`db_size`.
    pub fn segment(&self, i: usize) -> &ScoreStats {
        &self.per_segment[i]
    }

    /// Build the query's TF-IDF model from the merged statistics. Token
    /// strings resolve through the snapshot's widest vocabulary, so a token
    /// any segment ever saw gets its collection-wide idf.
    pub fn tfidf_model<S: AsRef<str>>(&self, tokens: &[S], snapshot: &Snapshot) -> TfIdfModel {
        TfIdfModel::for_query_with_idf(tokens, |name| {
            snapshot
                .widest_interner()
                .and_then(|i| i.get(name))
                .map_or(0.0, |id| self.idf_id(id))
        })
    }

    /// Build the PRA model from the merged statistics (idf table over the
    /// widest vocabulary, normalized by the live collection size).
    pub fn pra_model(&self, snapshot: &Snapshot) -> PraModel {
        let table = snapshot
            .widest_interner()
            .map(|interner| {
                interner
                    .iter()
                    .map(|(id, name)| (name.to_string(), self.idf_id(id)))
                    .collect()
            })
            .unwrap_or_default();
        PraModel::with_idf_table(table, self.db_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ScoreStats;
    use ftsl_index::{IndexBuilder, LiveConfig, LiveIndex};
    use ftsl_model::{Corpus, NodeId};

    fn manual() -> LiveConfig {
        LiveConfig {
            background_merge: false,
            ..LiveConfig::default()
        }
    }

    #[test]
    fn merged_stats_match_a_monolithic_rebuild() {
        let live = LiveIndex::with_config(manual());
        let texts = [
            "usability of a software",
            "software testing tools",
            "task completion experiment",
            "usability by task completion",
        ];
        for (i, t) in texts.iter().enumerate() {
            live.add_document(t);
            if i % 2 == 1 {
                live.flush();
            }
        }
        live.delete_node(NodeId(1));
        let snap = live.snapshot();
        let stats = SnapshotStats::compute(&snap);

        // The monolithic oracle: rebuild from the survivors.
        let survivors: Vec<String> = snap
            .live_documents()
            .map(|(_, d)| {
                d.tokens
                    .iter()
                    .map(|&(t, _)| snap.widest_interner().unwrap().name(t).to_string())
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect();
        let corpus = Corpus::from_texts(&survivors);
        let index = IndexBuilder::new().build(&corpus);
        let mono = ScoreStats::compute(&corpus, &index);

        assert_eq!(stats.db_size(), mono.db_size);
        for (id, name) in snap.widest_interner().unwrap().iter() {
            let mono_df = corpus.token_id(name).map_or(0, |m| mono.df(m));
            assert_eq!(stats.df_id(id), mono_df, "df({name})");
            let mono_idf = corpus.token_id(name).map_or(0.0, |m| mono.idf(m));
            assert_eq!(
                stats.idf_id(id).to_bits(),
                mono_idf.to_bits(),
                "idf({name})"
            );
        }
        // Per-node norms: walk live docs in order; they are the monolithic
        // nodes 0..n in the same order.
        let mut mono_node = 0u32;
        for (seg_idx, seg) in snap.segments().iter().enumerate() {
            let per = stats.segment(seg_idx);
            for local in 0..seg.data().num_docs() {
                if seg.deletes().is_live(local) {
                    let l = NodeId(local as u32);
                    let m = NodeId(mono_node);
                    assert_eq!(
                        per.l2_norm(l).to_bits(),
                        mono.l2_norm(m).to_bits(),
                        "l2 of live doc {mono_node}"
                    );
                    assert_eq!(per.unique_tokens(l), mono.unique_tokens(m));
                    mono_node += 1;
                }
            }
        }
    }

    #[test]
    fn models_over_snapshots_match_monolithic_models() {
        let live = LiveIndex::with_config(manual());
        live.add_document("alpha beta gamma");
        live.flush();
        live.add_document("beta beta delta");
        live.add_document("gamma doomed");
        live.flush();
        live.delete_node(NodeId(2)); // "doomed" survives nowhere
        let snap = live.snapshot();
        let stats = SnapshotStats::compute(&snap);

        let survivors = ["alpha beta gamma", "beta beta delta"];
        let corpus = Corpus::from_texts(&survivors);
        let index = IndexBuilder::new().build(&corpus);
        let mono = ScoreStats::compute(&corpus, &index);

        // TF-IDF: a query mentioning a token only the tombstoned doc had.
        let q = ["beta", "doomed", "alpha"];
        let snap_model = stats.tfidf_model(&q, &snap);
        let mono_model = TfIdfModel::for_query(&q, &corpus, &mono);
        for t in q {
            assert_eq!(
                snap_model.weight(t).to_bits(),
                mono_model.weight(t).to_bits(),
                "weight({t})"
            );
        }
        assert_eq!(
            snap_model.query_norm().to_bits(),
            mono_model.query_norm().to_bits()
        );

        // PRA: token probabilities agree for live and dead tokens alike.
        let snap_pra = stats.pra_model(&snap);
        let mono_pra = PraModel::new(&corpus, &mono);
        use crate::ScoringModel;
        for t in ["alpha", "beta", "gamma", "delta", "doomed", "unseen"] {
            let a = snap_pra.token_tuple(t, NodeId(0), stats.segment(0));
            let b = mono_pra.token_tuple(t, NodeId(0), &mono);
            assert_eq!(a.to_bits(), b.to_bits(), "pra({t})");
        }
    }

    #[test]
    fn empty_snapshot_yields_empty_stats() {
        let live = LiveIndex::with_config(manual());
        let snap = live.snapshot();
        let stats = SnapshotStats::compute(&snap);
        assert_eq!(stats.db_size(), 0);
        assert_eq!(stats.df_id(TokenId(0)), 0);
        assert_eq!(stats.idf_id(TokenId(5)), 0.0);
        let model = stats.tfidf_model(&["anything"], &snap);
        assert_eq!(model.weight("anything"), 0.0);
    }
}
