//! Scored relations and the scored algebra evaluator.
//!
//! Mirrors `ftsl_algebra`'s materialized evaluator, threading per-tuple
//! scores through every operator according to a [`ScoringModel`].

use crate::stats::ScoreStats;
use crate::ScoringModel;
use ftsl_algebra::AlgExpr;
use ftsl_index::InvertedIndex;
use ftsl_model::{Corpus, NodeId, Position};
use ftsl_predicates::PredicateRegistry;
use std::cmp::Ordering;
use std::collections::BTreeMap;

/// A materialized full-text relation with a score column.
#[derive(Clone, Debug, Default)]
pub struct ScoredRelation {
    /// Number of position attributes.
    pub arity: usize,
    /// Rows `(node, positions, score)`, canonical (sorted, unique tuples).
    pub rows: Vec<(NodeId, Vec<Position>, f64)>,
}

impl ScoredRelation {
    fn new(arity: usize) -> Self {
        ScoredRelation {
            arity,
            rows: Vec::new(),
        }
    }

    fn key(row: &(NodeId, Vec<Position>, f64)) -> (NodeId, Vec<u32>) {
        (row.0, row.1.iter().map(|p| p.offset).collect())
    }

    fn cmp_rows(a: &(NodeId, Vec<Position>, f64), b: &(NodeId, Vec<Position>, f64)) -> Ordering {
        Self::key(a).cmp(&Self::key(b))
    }

    /// Total score per node (the ranked-query output).
    pub fn node_scores<M: ScoringModel>(&self, model: &M) -> Vec<(NodeId, f64)> {
        let mut grouped: BTreeMap<NodeId, Vec<f64>> = BTreeMap::new();
        for (n, _, s) in &self.rows {
            grouped.entry(*n).or_default().push(*s);
        }
        grouped
            .into_iter()
            .map(|(n, scores)| (n, model.project(&scores)))
            .collect()
    }
}

/// Score-propagating evaluator for algebra expressions.
pub struct ScoredEvaluator<'a, M: ScoringModel> {
    corpus: &'a Corpus,
    index: &'a InvertedIndex,
    registry: &'a PredicateRegistry,
    stats: &'a ScoreStats,
    model: M,
}

impl<'a, M: ScoringModel> ScoredEvaluator<'a, M> {
    /// Create an evaluator with a scoring model.
    pub fn new(
        corpus: &'a Corpus,
        index: &'a InvertedIndex,
        registry: &'a PredicateRegistry,
        stats: &'a ScoreStats,
        model: M,
    ) -> Self {
        ScoredEvaluator {
            corpus,
            index,
            registry,
            stats,
            model,
        }
    }

    /// The scoring model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Evaluate an expression with score propagation.
    pub fn eval(&self, expr: &AlgExpr) -> Result<ScoredRelation, ftsl_algebra::AlgebraError> {
        expr.arity(self.registry)?;
        Ok(self.eval_unchecked(expr))
    }

    /// Evaluate a query and produce per-node scores, descending
    /// ([`f64::total_cmp`] with ascending node ids on ties — see
    /// [`crate::topk::rank_cmp`]).
    pub fn rank(&self, expr: &AlgExpr) -> Result<Vec<(NodeId, f64)>, ftsl_algebra::AlgebraError> {
        let rel = self.eval(expr)?;
        let mut scores = rel.node_scores(&self.model);
        crate::topk::sort_ranked(&mut scores);
        Ok(scores)
    }

    fn eval_unchecked(&self, expr: &AlgExpr) -> ScoredRelation {
        match expr {
            AlgExpr::SearchContext => {
                let mut r = ScoredRelation::new(0);
                for n in self.corpus.node_ids() {
                    r.rows.push((n, Vec::new(), self.model.context_tuple()));
                }
                r
            }
            AlgExpr::HasPos => {
                let mut r = ScoredRelation::new(1);
                // `decoded_any`/`decoded_list`: resident view under dual
                // residency, lazily decoded through the index's LRU cache
                // under blocks-only — the oracle works on either.
                for (node, positions) in self.index.decoded_any().iter() {
                    for &p in positions {
                        r.rows.push((node, vec![p], self.model.any_tuple()));
                    }
                }
                r
            }
            AlgExpr::TokenRel(tok) => {
                let mut r = ScoredRelation::new(1);
                if let Some(id) = self.corpus.token_id(tok) {
                    for (node, positions) in self.index.decoded_list(id).iter() {
                        let s = self.model.token_tuple(tok, node, self.stats);
                        for &p in positions {
                            r.rows.push((node, vec![p], s));
                        }
                    }
                }
                r
            }
            AlgExpr::Project(input, cols) => {
                /// Rows grouped by projected key, carrying positions and
                /// the scores to merge.
                type Groups = BTreeMap<(NodeId, Vec<u32>), (Vec<Position>, Vec<f64>)>;
                let inner = self.eval_unchecked(input);
                let mut grouped: Groups = BTreeMap::new();
                for (n, ps, s) in &inner.rows {
                    let projected: Vec<Position> = cols.iter().map(|&c| ps[c]).collect();
                    let key = (*n, projected.iter().map(|p| p.offset).collect());
                    grouped
                        .entry(key)
                        .or_insert_with(|| (projected, Vec::new()))
                        .1
                        .push(*s);
                }
                let mut r = ScoredRelation::new(cols.len());
                for ((n, _), (ps, scores)) in grouped {
                    r.rows.push((n, ps, self.model.project(&scores)));
                }
                r
            }
            AlgExpr::Join(a, b) => {
                let left = self.eval_unchecked(a);
                let right = self.eval_unchecked(b);
                let mut r = ScoredRelation::new(left.arity + right.arity);
                let mut j_lo = 0usize;
                let mut i = 0usize;
                while i < left.rows.len() {
                    let node = left.rows[i].0;
                    let i_hi = left.rows[i..]
                        .iter()
                        .position(|(n, ..)| *n != node)
                        .map_or(left.rows.len(), |k| i + k);
                    while j_lo < right.rows.len() && right.rows[j_lo].0 < node {
                        j_lo += 1;
                    }
                    let j_hi = right.rows[j_lo..]
                        .iter()
                        .position(|(n, ..)| *n != node)
                        .map_or(right.rows.len(), |k| j_lo + k);
                    let (lg, rg) = (i_hi - i, j_hi - j_lo);
                    if rg > 0 {
                        for (_, lp, ls) in &left.rows[i..i_hi] {
                            for (_, rp, rs) in &right.rows[j_lo..j_hi] {
                                let mut ps = lp.clone();
                                ps.extend_from_slice(rp);
                                r.rows.push((node, ps, self.model.join(*ls, *rs, lg, rg)));
                            }
                        }
                    }
                    i = i_hi;
                }
                r
            }
            AlgExpr::Select {
                input,
                pred,
                cols,
                consts,
            } => {
                let inner = self.eval_unchecked(input);
                let p = self.registry.get(*pred);
                let mut r = ScoredRelation::new(inner.arity);
                let mut args = Vec::with_capacity(cols.len());
                for (n, ps, s) in inner.rows {
                    args.clear();
                    args.extend(cols.iter().map(|&c| ps[c]));
                    if p.eval(&args, consts) {
                        let s2 = self.model.select(s, p, &args, consts);
                        r.rows.push((n, ps, s2));
                    }
                }
                r
            }
            AlgExpr::Union(a, b) => {
                let left = self.eval_unchecked(a);
                let right = self.eval_unchecked(b);
                let mut r = ScoredRelation::new(left.arity);
                let (mut i, mut j) = (0, 0);
                while i < left.rows.len() || j < right.rows.len() {
                    let ord = match (left.rows.get(i), right.rows.get(j)) {
                        (Some(l), Some(rr)) => ScoredRelation::cmp_rows(l, rr),
                        (Some(_), None) => Ordering::Less,
                        (None, Some(_)) => Ordering::Greater,
                        (None, None) => break,
                    };
                    match ord {
                        Ordering::Less => {
                            let (n, ps, s) = left.rows[i].clone();
                            r.rows.push((n, ps, self.model.union(Some(s), None)));
                            i += 1;
                        }
                        Ordering::Greater => {
                            let (n, ps, s) = right.rows[j].clone();
                            r.rows.push((n, ps, self.model.union(None, Some(s))));
                            j += 1;
                        }
                        Ordering::Equal => {
                            let (n, ps, s1) = left.rows[i].clone();
                            let s2 = right.rows[j].2;
                            r.rows.push((n, ps, self.model.union(Some(s1), Some(s2))));
                            i += 1;
                            j += 1;
                        }
                    }
                }
                r
            }
            AlgExpr::Intersect(a, b) => {
                let left = self.eval_unchecked(a);
                let right = self.eval_unchecked(b);
                let mut r = ScoredRelation::new(left.arity);
                let (mut i, mut j) = (0, 0);
                while i < left.rows.len() && j < right.rows.len() {
                    match ScoredRelation::cmp_rows(&left.rows[i], &right.rows[j]) {
                        Ordering::Less => i += 1,
                        Ordering::Greater => j += 1,
                        Ordering::Equal => {
                            let (n, ps, s1) = left.rows[i].clone();
                            let s2 = right.rows[j].2;
                            r.rows.push((n, ps, self.model.intersect(s1, s2)));
                            i += 1;
                            j += 1;
                        }
                    }
                }
                r
            }
            AlgExpr::Difference(a, b) => {
                let left = self.eval_unchecked(a);
                let right = self.eval_unchecked(b);
                let mut r = ScoredRelation::new(left.arity);
                let (mut i, mut j) = (0, 0);
                while i < left.rows.len() {
                    let ord = match right.rows.get(j) {
                        Some(rr) => ScoredRelation::cmp_rows(&left.rows[i], rr),
                        None => Ordering::Less,
                    };
                    match ord {
                        Ordering::Less => {
                            let (n, ps, s) = left.rows[i].clone();
                            r.rows.push((n, ps, self.model.difference(s)));
                            i += 1;
                        }
                        Ordering::Greater => j += 1,
                        Ordering::Equal => {
                            i += 1;
                            j += 1;
                        }
                    }
                }
                r
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pra::PraModel;
    use crate::tfidf::TfIdfModel;
    use ftsl_algebra::expr::ops::*;
    use ftsl_index::IndexBuilder;

    fn setup() -> (Corpus, InvertedIndex, PredicateRegistry, ScoreStats) {
        let corpus = Corpus::from_texts(&[
            "usability test usability",
            "test of things",
            "usability",
            "unrelated words here",
        ]);
        let index = IndexBuilder::new().build(&corpus);
        let stats = ScoreStats::compute(&corpus, &index);
        (corpus, index, PredicateRegistry::with_builtins(), stats)
    }

    #[test]
    fn tfidf_ranks_higher_tf_first() {
        let (corpus, index, reg, stats) = setup();
        let model = TfIdfModel::for_query(&["usability"], &corpus, &stats);
        let ev = ScoredEvaluator::new(&corpus, &index, &reg, &stats, model);
        let ranked = ev.rank(&project_nodes(token("usability"))).unwrap();
        assert_eq!(ranked.len(), 2);
        // Node 2 is a single-token document entirely about "usability";
        // node 0 mentions it twice among three tokens. Both beat absent docs.
        assert!(ranked.iter().all(|(_, s)| *s > 0.0));
        let nodes: Vec<u32> = ranked.iter().map(|(n, _)| n.0).collect();
        assert!(nodes.contains(&0) && nodes.contains(&2));
    }

    #[test]
    fn pra_scores_stay_probabilities_through_operators() {
        let (corpus, index, reg, stats) = setup();
        let model = PraModel::new(&corpus, &stats);
        let ev = ScoredEvaluator::new(&corpus, &index, &reg, &stats, model);
        let distance = reg.lookup("distance").unwrap();
        let e = project_nodes(select(
            join(token("usability"), token("test")),
            distance,
            &[0, 1],
            &[5],
        ));
        let ranked = ev.rank(&e).unwrap();
        assert!(!ranked.is_empty());
        for (_, s) in &ranked {
            assert!((0.0..=1.0).contains(s), "score {s} out of range");
        }
    }

    #[test]
    fn union_and_difference_scores() {
        let (corpus, index, reg, stats) = setup();
        let model = PraModel::new(&corpus, &stats);
        let ev = ScoredEvaluator::new(&corpus, &index, &reg, &stats, model);
        let u = ev
            .eval(&union(token("usability"), token("usability")))
            .unwrap();
        // Same tuple on both sides: 1-(1-s)^2 > s.
        let single = ev.eval(&token("usability")).unwrap();
        assert_eq!(u.rows.len(), single.rows.len());
        for (us, ss) in u.rows.iter().zip(&single.rows) {
            assert!(us.2 > ss.2);
        }
        let d = ev
            .eval(&difference(
                project_nodes(token("test")),
                project_nodes(token("usability")),
            ))
            .unwrap();
        let nodes: Vec<u32> = d.rows.iter().map(|(n, ..)| n.0).collect();
        assert_eq!(nodes, vec![1]);
    }
}
