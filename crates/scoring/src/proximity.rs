//! Proximity closeness: the score term behind NEAR/phrase ranking.
//!
//! A document matching a two-token proximity query is scored by how
//! *close* the tokens actually are: with `g` the document's minimum
//! qualifying gap (offset difference between the occurrences) and `bound`
//! the query's largest admitted gap,
//!
//! ```text
//! closeness(g, bound) = (bound − g + 1) / bound      for 1 ≤ g ≤ bound
//! ```
//!
//! so an adjacent pair (`g = 1`) scores `1.0`, the loosest admitted pair
//! (`g = bound`) scores `1/bound`, and anything outside the bound scores
//! `0.0`. Two properties make this the right shape for the streaming
//! top-k machinery:
//!
//! * **monotone decreasing in the gap** — the pair index's per-block
//!   `min_gap` header ([`ftsl_index::pair::PairBlockMeta::min_gap`]) is
//!   therefore a *block-max score bound*: `closeness(min_gap, bound)` is
//!   the best score any entry in the block can achieve, so a block whose
//!   bound cannot beat the current heap threshold is skipped whole;
//! * **normalized to `(0, 1]`** — scores are comparable across queries
//!   with different bounds and compose with other per-document terms.

/// Closeness of a matched pair with minimum gap `gap` under a query gap
/// bound `bound`. Zero outside `1 ≤ gap ≤ bound` (no qualifying pair) and
/// for the degenerate `bound = 0`.
pub fn closeness(gap: u32, bound: u32) -> f64 {
    if bound == 0 || gap == 0 || gap > bound {
        return 0.0;
    }
    f64::from(bound - gap + 1) / f64::from(bound)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacent_pairs_score_one() {
        for bound in [1, 2, 16, 1000] {
            assert_eq!(closeness(1, bound), 1.0, "bound = {bound}");
        }
    }

    #[test]
    fn strictly_decreasing_within_the_bound() {
        let bound = 16;
        for g in 2..=bound {
            assert!(
                closeness(g, bound) < closeness(g - 1, bound),
                "gap {g} must score below gap {}",
                g - 1
            );
            assert!(closeness(g, bound) > 0.0);
        }
    }

    #[test]
    fn out_of_range_gaps_score_zero() {
        assert_eq!(closeness(0, 16), 0.0, "gap 0 is not a forward pair");
        assert_eq!(closeness(17, 16), 0.0, "beyond the bound");
        assert_eq!(closeness(1, 0), 0.0, "degenerate bound");
        assert_eq!(closeness(u32::MAX, 16), 0.0, "exhausted-cursor sentinel");
    }

    #[test]
    fn loosest_admitted_gap_scores_one_over_bound() {
        assert_eq!(closeness(16, 16), 1.0 / 16.0);
        assert_eq!(closeness(4, 4), 0.25);
    }
}
