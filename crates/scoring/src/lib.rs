//! # ftsl-scoring — the scoring framework of Section 3
//!
//! The paper's framework rests on two extensions of the algebra: **per-tuple
//! scoring information** and **scoring transformations** attached to every
//! operator. No scoring method is hard-coded; this crate provides the
//! [`ScoringModel`] trait plus the two instantiations the paper describes:
//!
//! * [`tfidf::TfIdfModel`] — Section 3.1. Token-relation tuples carry the
//!   precomputable `idf(t)/(unique_tokens(n)·‖n‖₂)` mass, scaled at query
//!   time; joins redistribute score (`t3 = t1/|R2| + t2/|R1|`, with `|·|`
//!   read as the per-node group cardinality, which is what makes the "first
//!   law of thermodynamics" conservation — and Theorem 2 — hold exactly);
//!   projections sum; unions add; intersections take the minimum.
//! * [`pra::PraModel`] — Section 3.2, the probabilistic relational algebra
//!   of Fuhr–Rölleke: scores are probabilities, joins multiply, projections
//!   combine as `1 − ∏(1 − sᵢ)`, predicates scale by a predicate-specific
//!   `f` (e.g. `1 − |p1−p2|/dist`), negation complements.
//!
//! [`classic`] computes textbook cosine TF-IDF directly so tests can verify
//! **Theorem 2** (the propagated scores equal classic TF-IDF for conjunctive
//! and disjunctive queries) mechanically, and [`bool_scores`] attaches
//! per-operator scoring to the BOOL merge engine (Section 5.3).
//!
//! ## Streaming top-k retrieval
//!
//! The exhaustive evaluators above score *every* node — the right shape for
//! oracles, the wrong one for serving. [`stream`] rebuilds scored retrieval
//! on the seeking-cursor substrate: per-list [`ftsl_index::EntryScorer`]s
//! attach scores at the cursor, a bounded [`topk::TopK`] heap keeps only
//! the requested results, and MaxScore/block-max pruning skips lists and
//! whole compressed blocks whose impact bound cannot reach the heap
//! threshold. A worked example:
//!
//! ```
//! use ftsl_index::{IndexBuilder, IndexLayout};
//! use ftsl_model::Corpus;
//! use ftsl_scoring::stream::topk_tfidf;
//! use ftsl_scoring::{ScoreStats, TfIdfModel};
//!
//! let corpus = Corpus::from_texts(&[
//!     "usability usability usability",
//!     "usability software",
//!     "software tools",
//!     "unrelated words",
//! ]);
//! let index = IndexBuilder::new().build(&corpus);
//! let stats = ScoreStats::compute(&corpus, &index);
//! let query = ["usability", "software"];
//! let model = TfIdfModel::for_query(&query, &corpus, &stats);
//!
//! // Top 2 of the disjunction, streamed through the pruned union over the
//! // block-compressed layout.
//! let top = topk_tfidf(&query, &corpus, &index, &stats, &model, IndexLayout::Blocks, 2);
//! assert_eq!(top.hits.len(), 2);
//! assert!(top.hits[0].1 >= top.hits[1].1);
//! // The counters report exactly how much of the index was decoded.
//! assert!(top.counters.entries > 0);
//! ```

#![warn(missing_docs)]

pub mod bool_scores;
pub mod classic;
pub mod live;
pub mod pra;
pub mod proximity;
pub mod relation;
pub mod stats;
pub mod stream;
pub mod tfidf;
pub mod topk;

pub use live::SnapshotStats;
pub use pra::PraModel;
pub use proximity::closeness;
pub use relation::{ScoredEvaluator, ScoredRelation};
pub use stats::ScoreStats;
pub use stream::{
    pra_tree_bound, pra_union_cursors, run_bool_topk, run_bool_topk_filtered, run_bool_topk_into,
    tfidf_union_cursors, topk_pra_disjunction, topk_pra_disjunction_filtered, topk_tfidf,
    topk_tfidf_filtered, topk_union, topk_union_into, union_bound, ScoredHits, UnionKind,
};
pub use tfidf::TfIdfModel;
pub use topk::TopK;

use ftsl_model::Position;
use ftsl_predicates::Predicate;

/// Per-operator scoring transformations (Section 3's framework).
pub trait ScoringModel {
    /// Score of one tuple of `R_token` (a single occurrence of `token` in
    /// `node`).
    fn token_tuple(&self, token: &str, node: ftsl_model::NodeId, stats: &ScoreStats) -> f64;

    /// Score of a `HasPos` tuple.
    fn any_tuple(&self) -> f64;

    /// Score of a `SearchContext` tuple.
    fn context_tuple(&self) -> f64;

    /// Join transformation. `left_group`/`right_group` are the numbers of
    /// joining tuples on each side *within the current context node*.
    fn join(&self, s1: f64, s2: f64, left_group: usize, right_group: usize) -> f64;

    /// Projection: combine the scores of input tuples collapsing onto one
    /// output tuple.
    fn project(&self, scores: &[f64]) -> f64;

    /// Selection: transform a surviving tuple's score given the predicate
    /// and its arguments.
    fn select(&self, s: f64, pred: &dyn Predicate, args: &[Position], consts: &[i64]) -> f64;

    /// Union: combine scores of the same tuple from both sides (`None` =
    /// absent, the paper's "missing tuples are assumed to have score 0").
    fn union(&self, s1: Option<f64>, s2: Option<f64>) -> f64;

    /// Intersection.
    fn intersect(&self, s1: f64, s2: f64) -> f64;

    /// Difference: the surviving (left-only) tuple's score.
    fn difference(&self, s1: f64) -> f64;
}
