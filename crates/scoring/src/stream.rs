//! Streaming scored retrieval: score-at-the-cursor with top-k pruning.
//!
//! This module replaces the dense "score every node, then sort" pass with
//! evaluators that stream posting entries through a [`TopK`] heap:
//!
//! * [`topk_union`] — the pruned k-way union for *flat disjunctions*
//!   (`'a' OR 'b' OR ...`, the ranked-query workhorse). It runs
//!   MaxScore-style pruning on list-level bounds and block-max pruning on
//!   the per-block impact headers: lists whose bound cannot lift a document
//!   into the current top-k are demoted to probe-only, probes whose
//!   block-level bound cannot help are skipped without decoding, and when a
//!   single driving list remains its blocks are skipped wholesale while
//!   their bounds stay under the heap threshold.
//! * [`run_bool_topk`] — cursor-driven evaluation of *arbitrary BOOL
//!   queries* under the paper's Section 5.3 probabilistic semantics
//!   (`AND` multiplies, `OR` combines probabilistically, `NOT`
//!   complements), arithmetically identical to the exhaustive
//!   [`crate::bool_scores::run_bool_scored`] oracle but streaming: no
//!   `BTreeMap` over the corpus, conjunctions leapfrog by `seek`, and only
//!   the best `k` results are retained.
//!
//! Both evaluators run over either physical layout
//! ([`ftsl_index::IndexLayout`]) through the [`ScoredCursor`] contract.

use crate::pra::PraModel;
use crate::stats::ScoreStats;
use crate::topk::TopK;
use crate::ScoringModel;
use ftsl_index::{
    AccessCounters, DeleteFilteredCursor, DeleteSet, IndexLayout, InvertedIndex, ScoredCursor,
};
use ftsl_lang::SurfaceQuery;
use ftsl_model::{Corpus, NodeId};

/// Wrap a leaf cursor in tombstone filtering when a delete set is present
/// (live-index segments); a `None` set is the frozen-index fast path.
fn wrap_live<'a>(
    cur: Box<dyn ScoredCursor + 'a>,
    live: Option<&'a DeleteSet>,
) -> Box<dyn ScoredCursor + 'a> {
    match live {
        Some(deletes) if deletes.deleted_count() > 0 => {
            Box::new(DeleteFilteredCursor::new(cur, deletes))
        }
        _ => cur,
    }
}

/// TF-IDF entry scoring for one search token: per-entry score is the
/// token's full contribution to the node's cosine TF-IDF (Section 3.1), so
/// summing across a disjunction's tokens reproduces
/// [`crate::classic::classic_tfidf`].
pub struct TfIdfEntryScorer<'a> {
    stats: &'a ScoreStats,
    /// `w(t)·idf(t)/‖q‖₂` — the node-independent factor.
    unit: f64,
}

impl<'a> TfIdfEntryScorer<'a> {
    /// Scorer for `token` under a query's [`crate::TfIdfModel`].
    pub fn new(token: &str, model: &crate::TfIdfModel, stats: &'a ScoreStats) -> Self {
        TfIdfEntryScorer {
            stats,
            unit: model.weight(token) * model.token_idf(token) / model.query_norm(),
        }
    }
}

impl ftsl_index::EntryScorer for TfIdfEntryScorer<'_> {
    fn score(&self, node: NodeId, tf: u32) -> f64 {
        f64::from(tf) * self.unit
            / (self.stats.unique_tokens(node) as f64 * self.stats.l2_norm(node))
    }

    fn bound(&self, max_tf: u32) -> f64 {
        f64::from(max_tf) * self.unit * self.stats.max_node_boost()
    }
}

/// Probabilistic (PRA) entry scoring for one search token: the entry's
/// per-occurrence probabilities collapse by probabilistic OR, exactly as the
/// exhaustive oracle's `project` does — `1 − (1 − s)^tf`, computed by the
/// same fold so results are bit-identical.
pub struct PraEntryScorer {
    /// The token's tuple probability (node-independent).
    prob: f64,
}

impl PraEntryScorer {
    /// Scorer for `token` under a corpus's [`PraModel`].
    pub fn new(token: &str, model: &PraModel, stats: &ScoreStats) -> Self {
        PraEntryScorer {
            prob: model.token_tuple(token, NodeId(0), stats),
        }
    }

    /// A scorer with a fixed tuple probability (used for `ANY`, whose
    /// tuples carry probability 1).
    pub fn constant(prob: f64) -> Self {
        PraEntryScorer { prob }
    }

    fn collapse(&self, tf: u32) -> f64 {
        // Identical arithmetic to PraModel::project over `tf` copies.
        1.0 - (0..tf).fold(1.0, |acc, _| acc * (1.0 - self.prob))
    }
}

impl ftsl_index::EntryScorer for PraEntryScorer {
    fn score(&self, _node: NodeId, tf: u32) -> f64 {
        self.collapse(tf)
    }

    fn bound(&self, max_tf: u32) -> f64 {
        // Monotone in tf, so the block's max_tf bounds every entry.
        self.collapse(max_tf)
    }
}

/// How a k-way union combines per-list contributions to one node's score.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnionKind {
    /// Additive (TF-IDF): contributions sum.
    Sum,
    /// Probabilistic OR (PRA): `1 − ∏(1 − sᵢ)`.
    ProbOr,
}

impl UnionKind {
    /// The combine identity (score of a node absent from every list).
    pub fn identity(&self) -> f64 {
        0.0
    }

    /// Combine two contributions.
    pub fn combine(&self, a: f64, b: f64) -> f64 {
        match self {
            UnionKind::Sum => a + b,
            UnionKind::ProbOr => 1.0 - (1.0 - a) * (1.0 - b),
        }
    }
}

/// Hits plus the work counters accumulated while producing them.
#[derive(Clone, Debug, Default)]
pub struct ScoredHits {
    /// `(node, score)` in ranking order (descending score, ascending node).
    pub hits: Vec<(NodeId, f64)>,
    /// Entries/positions decoded, entries and blocks skipped.
    pub counters: AccessCounters,
}

/// The list-level score upper bound of a whole union: what any single node
/// could score if it sat at the impact ceiling of *every* list at once.
/// This is the segment-granularity pruning bound — a live-index segment
/// whose union bound falls below a shared heap's threshold cannot place a
/// single document and can be skipped without touching a posting.
pub fn union_bound(cursors: &[Box<dyn ScoredCursor + '_>], kind: UnionKind) -> f64 {
    cursors.iter().fold(kind.identity(), |acc, c| {
        kind.combine(acc, c.max_score_list())
    })
}

/// MaxScore/block-max pruned k-way union: the top `k` nodes of a flat
/// disjunction whose per-list scores combine by `kind`.
///
/// Cursors may come from either layout (see
/// [`InvertedIndex::scored_cursor`]). Nodes scoring ≤ 0 are never reported,
/// matching the exhaustive oracles.
pub fn topk_union(
    cursors: Vec<Box<dyn ScoredCursor + '_>>,
    kind: UnionKind,
    k: usize,
) -> ScoredHits {
    let mut topk = TopK::new(k);
    let counters = topk_union_into(cursors, kind, &mut topk, None);
    ScoredHits {
        hits: topk.into_ranked(),
        counters,
    }
}

/// [`topk_union`] draining into a caller-owned heap: the global-threshold
/// form. The heap may arrive non-empty (tightened by earlier segments of a
/// live snapshot), every pruning decision reads its *current* threshold,
/// and candidates enter under `globals[local]` when a remap is given — so
/// heap tie-breaks run on the same ids a monolithic index would use.
///
/// Soundness of sharing: the heap's threshold only ever tightens, so a
/// candidate pruned against the current worst kept score is pruned against
/// every later (higher) threshold too; and each live document exists in
/// exactly one segment, so per-segment scores never need cross-segment
/// combination.
pub fn topk_union_into(
    cursors: Vec<Box<dyn ScoredCursor + '_>>,
    kind: UnionKind,
    topk: &mut TopK,
    globals: Option<&[u32]>,
) -> AccessCounters {
    // Ascending by list bound: prefix[i] bounds what lists 0..=i can jointly
    // contribute to any single node. The suffix past the "first essential"
    // index drives candidate generation; lists below it are probe-only.
    // Each cursor keeps its *caller-order* index through the sort: the
    // combine fold below runs in that order, so a node's score is
    // bit-identical no matter how the bounds happened to rank the lists —
    // in particular, one segment of a live index (whose per-list bounds
    // differ from the whole collection's) folds exactly like a monolithic
    // index over the same documents.
    let mut cursors: Vec<(usize, Box<dyn ScoredCursor + '_>)> =
        cursors.into_iter().enumerate().collect();
    cursors.sort_by(|a, b| a.1.max_score_list().total_cmp(&b.1.max_score_list()));
    let m = cursors.len();
    let prefix: Vec<f64> = cursors
        .iter()
        .scan(kind.identity(), |acc, (_, c)| {
            *acc = kind.combine(*acc, c.max_score_list());
            Some(*acc)
        })
        .collect();
    for (_, c) in cursors.iter_mut() {
        c.next_entry();
    }
    let mut first_essential = 0usize;
    // Per-candidate contributions, keyed by the caller-order cursor index
    // (see above).
    let mut parts: Vec<(usize, f64)> = Vec::with_capacity(m);

    loop {
        // Demote lists whose joint prefix bound can no longer reach the
        // heap: monotone in the threshold, so only moves forward.
        while first_essential < m && !topk.could_enter(prefix[first_essential]) {
            first_essential += 1;
        }
        if first_essential >= m {
            break; // no unseen node can enter the top-k
        }
        // With a single driving list left, skip whole blocks while their
        // impact bound (joined with everything the probe lists could add)
        // stays under the threshold.
        if first_essential == m - 1 {
            let below = if first_essential == 0 {
                kind.identity()
            } else {
                prefix[first_essential - 1]
            };
            let driver = &mut cursors[m - 1].1;
            while !driver.exhausted()
                && !topk.could_enter(kind.combine(driver.max_score_current_block(), below))
            {
                driver.skip_block();
            }
        }
        // Candidate: smallest current node among essential lists.
        let Some(candidate) = cursors[first_essential..]
            .iter()
            .filter_map(|(_, c)| c.node())
            .min()
        else {
            break; // every essential list is exhausted
        };
        // The heap ranks (and tie-breaks) on remapped ids; cursor movement
        // stays on local ids.
        let ranked_id = globals.map_or(candidate, |g| NodeId(g[candidate.index()]));
        parts.clear();
        for (key, c) in cursors.iter_mut().skip(first_essential) {
            if c.node() == Some(candidate) {
                parts.push((*key, c.score()));
                c.next_entry();
            }
        }
        // Probe non-essential lists from the strongest down; stop as soon
        // as even their full remaining bound cannot lift the candidate in.
        // (`would_accept` with a score *bound* is a sound prune: the real
        // score is no larger, and bound-ties still respect the node-id
        // tie-break.)
        let mut acc_bound: f64 = parts
            .iter()
            .fold(kind.identity(), |acc, &(_, s)| kind.combine(acc, s));
        for i in (0..first_essential).rev() {
            if !topk.would_accept(ranked_id, kind.combine(acc_bound, prefix[i])) {
                break;
            }
            // Block-max refinement: bound the probe by the block the
            // candidate would land in — skip the seek (and all decoding)
            // when that block cannot help.
            let below = if i == 0 {
                kind.identity()
            } else {
                prefix[i - 1]
            };
            let block_bound = cursors[i].1.max_score_at(candidate);
            if !topk.would_accept(
                ranked_id,
                kind.combine(acc_bound, kind.combine(block_bound, below)),
            ) {
                // The probed list contributes nothing decodable here; the
                // saving shows up as entries it never decodes (block-level
                // `blocks_skipped` accounting stays with the cursors, which
                // know their physical layout).
                continue;
            }
            if cursors[i].1.seek(candidate) == Some(candidate) {
                let s = cursors[i].1.score();
                parts.push((cursors[i].0, s));
                acc_bound = kind.combine(acc_bound, s);
            }
        }
        // Fixed-order fold (see `parts` above).
        parts.sort_by_key(|&(key, _)| key);
        let score = parts
            .iter()
            .fold(kind.identity(), |acc, &(_, s)| kind.combine(acc, s));
        if score > 0.0 {
            topk.insert(ranked_id, score);
        }
    }

    let mut counters = AccessCounters::new();
    for (_, c) in &cursors {
        counters += c.counters();
    }
    counters
}

/// A cursor-style stream of `(node, score)` pairs in ascending node order —
/// the building block of streaming BOOL scoring.
///
/// Like the posting cursors, streams *stay put*: `current` re-reads the
/// entry the stream is positioned on, and `seek` does not move when the
/// current node already satisfies the bound. That stability is what lets a
/// conjunction leapfrog its operands without losing matches.
trait ScoreStream {
    /// The scored node the stream is positioned on, if any. `&mut self`
    /// because leaf scores can trigger a lazy tf-column decode.
    fn current(&mut self) -> Option<(NodeId, f64)>;
    /// Advance to the next scored node.
    fn next(&mut self) -> Option<(NodeId, f64)>;
    /// Advance to the first scored node with id ≥ `target`; stays put if
    /// the current node already qualifies.
    fn seek(&mut self, target: NodeId) -> Option<(NodeId, f64)>;
    /// Work accumulated so far.
    fn counters(&self) -> AccessCounters;
}

/// Leaf: a scored posting cursor.
struct LeafStream<'a> {
    cur: Box<dyn ScoredCursor + 'a>,
}

impl ScoreStream for LeafStream<'_> {
    fn current(&mut self) -> Option<(NodeId, f64)> {
        let node = self.cur.node()?;
        Some((node, self.cur.score()))
    }

    fn next(&mut self) -> Option<(NodeId, f64)> {
        let node = self.cur.next_entry()?;
        Some((node, self.cur.score()))
    }

    fn seek(&mut self, target: NodeId) -> Option<(NodeId, f64)> {
        let node = self.cur.seek(target)?;
        Some((node, self.cur.score()))
    }

    fn counters(&self) -> AccessCounters {
        self.cur.counters()
    }
}

/// `AND`: intersection of supports, scores multiply (PRA join). The left
/// side drives `seek`s into the right, so entries outside the intersection
/// are skipped, not decoded.
struct AndStream<'a> {
    left: Box<dyn ScoreStream + 'a>,
    right: Box<dyn ScoreStream + 'a>,
    cur: Option<(NodeId, f64)>,
}

impl AndStream<'_> {
    /// Leapfrog from the left side's position until both sides agree.
    fn align(&mut self, mut l: Option<(NodeId, f64)>) -> Option<(NodeId, f64)> {
        self.cur = loop {
            let Some((ln, ls)) = l else { break None };
            let Some((rn, rs)) = self.right.seek(ln) else {
                break None;
            };
            if rn == ln {
                break Some((ln, ls * rs));
            }
            l = self.left.seek(rn);
        };
        self.cur
    }
}

impl ScoreStream for AndStream<'_> {
    fn current(&mut self) -> Option<(NodeId, f64)> {
        self.cur
    }

    fn next(&mut self) -> Option<(NodeId, f64)> {
        let l = self.left.next();
        self.align(l)
    }

    fn seek(&mut self, target: NodeId) -> Option<(NodeId, f64)> {
        if let Some((n, _)) = self.cur {
            if n >= target {
                return self.cur;
            }
        }
        let l = self.left.seek(target);
        self.align(l)
    }

    fn counters(&self) -> AccessCounters {
        self.left.counters() + self.right.counters()
    }
}

/// The oracle's union arithmetic, kept verbatim so streaming and exhaustive
/// results agree bit-for-bit (a missing side contributes score 0).
fn prob_or(a: f64, b: f64) -> f64 {
    1.0 - (1.0 - a) * (1.0 - b)
}

/// `OR`: union of supports; scores combine probabilistically with missing
/// sides contributing 0 — the exact arithmetic of the exhaustive oracle.
struct OrStream<'a> {
    left: Box<dyn ScoreStream + 'a>,
    right: Box<dyn ScoreStream + 'a>,
    cur: Option<(NodeId, f64)>,
    primed: bool,
}

impl OrStream<'_> {
    /// Recompute the current element from the children's positions without
    /// consuming them. The asymmetry mirrors the exhaustive oracle
    /// bit-for-bit: left-only nodes keep their score untouched, right-only
    /// nodes pass through the union formula with a missing left (`s1 = 0`).
    fn merge(&mut self) -> Option<(NodeId, f64)> {
        self.cur = match (self.left.current(), self.right.current()) {
            (Some((ln, ls)), Some((rn, rs))) => match ln.cmp(&rn) {
                std::cmp::Ordering::Less => Some((ln, ls)),
                std::cmp::Ordering::Greater => Some((rn, prob_or(0.0, rs))),
                std::cmp::Ordering::Equal => Some((ln, prob_or(ls, rs))),
            },
            (Some((ln, ls)), None) => Some((ln, ls)),
            (None, Some((rn, rs))) => Some((rn, prob_or(0.0, rs))),
            (None, None) => None,
        };
        self.cur
    }
}

impl ScoreStream for OrStream<'_> {
    fn current(&mut self) -> Option<(NodeId, f64)> {
        self.cur
    }

    fn next(&mut self) -> Option<(NodeId, f64)> {
        if !self.primed {
            self.primed = true;
            self.left.next();
            self.right.next();
        } else if let Some((n, _)) = self.cur {
            // Advance exactly the children that produced the current node.
            if self.left.current().is_some_and(|(ln, _)| ln == n) {
                self.left.next();
            }
            if self.right.current().is_some_and(|(rn, _)| rn == n) {
                self.right.next();
            }
        } else {
            return None;
        }
        self.merge()
    }

    fn seek(&mut self, target: NodeId) -> Option<(NodeId, f64)> {
        if self.primed {
            if let Some((n, _)) = self.cur {
                if n >= target {
                    return self.cur;
                }
            }
        }
        self.primed = true;
        if self.left.current().is_none_or(|(n, _)| n < target) {
            self.left.seek(target);
        }
        if self.right.current().is_none_or(|(n, _)| n < target) {
            self.right.seek(target);
        }
        self.merge()
    }

    fn counters(&self) -> AccessCounters {
        self.left.counters() + self.right.counters()
    }
}

/// `NOT`: dense complement over the node universe — every context node gets
/// `1 − s(inner)`, including nodes the inner stream never mentions (the
/// calculus semantics under which `NOT 'x'` holds on empty nodes).
struct NotStream<'a> {
    inner: Box<dyn ScoreStream + 'a>,
    inner_primed: bool,
    universe: u32,
    cur: Option<(NodeId, f64)>,
    done: bool,
}

impl NotStream<'_> {
    fn complement_at(&mut self, node: NodeId) -> (NodeId, f64) {
        let stale = if self.inner_primed {
            self.inner.current().is_some_and(|(n, _)| n < node)
        } else {
            self.inner_primed = true;
            true
        };
        if stale {
            self.inner.seek(node);
        }
        let s = match self.inner.current() {
            Some((n, s)) if n == node => s,
            _ => 0.0,
        };
        (node, 1.0 - s)
    }
}

impl ScoreStream for NotStream<'_> {
    fn current(&mut self) -> Option<(NodeId, f64)> {
        self.cur
    }

    fn next(&mut self) -> Option<(NodeId, f64)> {
        if self.done {
            return None;
        }
        let next_node = match self.cur {
            Some((n, _)) => n.0 + 1,
            None => 0,
        };
        if next_node >= self.universe {
            self.done = true;
            self.cur = None;
            return None;
        }
        self.cur = Some(self.complement_at(NodeId(next_node)));
        self.cur
    }

    fn seek(&mut self, target: NodeId) -> Option<(NodeId, f64)> {
        if self.done {
            return None;
        }
        if let Some((n, _)) = self.cur {
            if n >= target {
                return self.cur;
            }
        }
        if target.0 >= self.universe {
            self.done = true;
            self.cur = None;
            return None;
        }
        self.cur = Some(self.complement_at(target));
        self.cur
    }

    fn counters(&self) -> AccessCounters {
        self.inner.counters()
    }
}

/// Build the score stream for a BOOL-shaped query. A `live` delete set
/// wraps every leaf cursor in tombstone filtering (`NOT`'s dense complement
/// can still surface tombstoned nodes — the drain loop filters those).
fn build_stream<'a>(
    query: &SurfaceQuery,
    corpus: &'a Corpus,
    index: &'a InvertedIndex,
    stats: &ScoreStats,
    model: &PraModel,
    layout: IndexLayout,
    live: Option<&'a DeleteSet>,
) -> Result<Box<dyn ScoreStream + 'a>, String> {
    match query {
        SurfaceQuery::Lit(tok) => {
            let scorer = PraEntryScorer::new(tok, model, stats);
            let id = corpus
                .token_id(tok)
                .unwrap_or(ftsl_model::TokenId(u32::MAX));
            Ok(Box::new(LeafStream {
                cur: wrap_live(index.scored_cursor(id, layout, scorer), live),
            }))
        }
        SurfaceQuery::Any => {
            let scorer = PraEntryScorer::constant(1.0);
            let cur: Box<dyn ScoredCursor + 'a> = match index.effective_layout(layout) {
                IndexLayout::Decoded => Box::new(ftsl_index::ScoredList::new(index.any(), scorer)),
                IndexLayout::Blocks => Box::new(ftsl_index::ScoredBlocks::new(
                    index.any_block_list(),
                    scorer,
                )),
            };
            Ok(Box::new(LeafStream {
                cur: wrap_live(cur, live),
            }))
        }
        SurfaceQuery::Not(inner) => Ok(Box::new(NotStream {
            inner: build_stream(inner, corpus, index, stats, model, layout, live)?,
            inner_primed: false,
            universe: corpus.len() as u32,
            cur: None,
            done: false,
        })),
        SurfaceQuery::And(a, b) => Ok(Box::new(AndStream {
            left: build_stream(a, corpus, index, stats, model, layout, live)?,
            right: build_stream(b, corpus, index, stats, model, layout, live)?,
            cur: None,
        })),
        SurfaceQuery::Or(a, b) => Ok(Box::new(OrStream {
            left: build_stream(a, corpus, index, stats, model, layout, live)?,
            right: build_stream(b, corpus, index, stats, model, layout, live)?,
            cur: None,
            primed: false,
        })),
        other => Err(format!("construct {} is not in BOOL", other.render())),
    }
}

/// Streaming top-k evaluation of a BOOL-shaped query under PRA scoring:
/// the first `k` rows of [`crate::bool_scores::run_bool_scored`], computed
/// without materializing a score for every node.
pub fn run_bool_topk(
    query: &SurfaceQuery,
    corpus: &Corpus,
    index: &InvertedIndex,
    stats: &ScoreStats,
    model: &PraModel,
    layout: IndexLayout,
    k: usize,
) -> Result<ScoredHits, String> {
    run_bool_topk_filtered(query, corpus, index, stats, model, layout, k, None)
}

/// [`run_bool_topk`] over one live-index segment: tombstoned documents are
/// filtered at the leaf cursors *and* at heap insertion (a `NOT` over a
/// tombstoned node still surfaces it via the dense complement), so they can
/// neither appear in the hits nor displace live candidates from the heap.
#[allow(clippy::too_many_arguments)]
pub fn run_bool_topk_filtered(
    query: &SurfaceQuery,
    corpus: &Corpus,
    index: &InvertedIndex,
    stats: &ScoreStats,
    model: &PraModel,
    layout: IndexLayout,
    k: usize,
    live: Option<&DeleteSet>,
) -> Result<ScoredHits, String> {
    let mut topk = TopK::new(k);
    let counters = run_bool_topk_into(
        query, corpus, index, stats, model, layout, live, &mut topk, None,
    )?;
    Ok(ScoredHits {
        hits: topk.into_ranked(),
        counters,
    })
}

/// [`run_bool_topk_filtered`] draining into a caller-owned heap (see
/// [`topk_union_into`] for the sharing contract): nodes enter under
/// `globals[local]` when a remap is given. The stream is drained fully —
/// tree scores have no per-entry upper bound to prune on — but a shared
/// heap still concentrates the k best across segments in one place.
#[allow(clippy::too_many_arguments)]
pub fn run_bool_topk_into(
    query: &SurfaceQuery,
    corpus: &Corpus,
    index: &InvertedIndex,
    stats: &ScoreStats,
    model: &PraModel,
    layout: IndexLayout,
    live: Option<&DeleteSet>,
    topk: &mut TopK,
    globals: Option<&[u32]>,
) -> Result<AccessCounters, String> {
    let mut stream = build_stream(query, corpus, index, stats, model, layout, live)?;
    while let Some((node, score)) = stream.next() {
        if score > 0.0 && live.is_none_or(|d| d.is_live(node.index())) {
            let ranked_id = globals.map_or(node, |g| NodeId(g[node.index()]));
            topk.insert(ranked_id, score);
        }
    }
    Ok(stream.counters())
}

/// A score upper bound for *any* node under PRA stream-tree evaluation of
/// `query` against this corpus/index — computed from list metadata alone
/// (no posting is decoded). PRA scores are probabilities in `[0, 1]`, so
/// each combinator's bound follows from its children's:
/// literals bound by their list-level impact ceiling, `ANY`/`NOT` by 1,
/// `AND` by the product, `OR` by the probabilistic sum. Shapes outside
/// BOOL report the same error [`run_bool_topk`] would.
pub fn pra_tree_bound(
    query: &SurfaceQuery,
    corpus: &Corpus,
    index: &InvertedIndex,
    stats: &ScoreStats,
    model: &PraModel,
    layout: IndexLayout,
) -> Result<f64, String> {
    let empty = corpus.is_empty();
    match query {
        SurfaceQuery::Lit(tok) => {
            let scorer = PraEntryScorer::new(tok, model, stats);
            let id = corpus
                .token_id(tok)
                .unwrap_or(ftsl_model::TokenId(u32::MAX));
            Ok(index.scored_cursor(id, layout, scorer).max_score_list())
        }
        SurfaceQuery::Any => Ok(if empty { 0.0 } else { 1.0 }),
        // `NOT` scores `1 − s(inner)` over the dense node universe.
        SurfaceQuery::Not(_) => Ok(if empty { 0.0 } else { 1.0 }),
        SurfaceQuery::And(a, b) => {
            let (ba, bb) = (
                pra_tree_bound(a, corpus, index, stats, model, layout)?,
                pra_tree_bound(b, corpus, index, stats, model, layout)?,
            );
            Ok(ba * bb)
        }
        SurfaceQuery::Or(a, b) => {
            let (ba, bb) = (
                pra_tree_bound(a, corpus, index, stats, model, layout)?,
                pra_tree_bound(b, corpus, index, stats, model, layout)?,
            );
            Ok(prob_or(ba, bb))
        }
        other => Err(format!("construct {} is not in BOOL", other.render())),
    }
}

/// Streaming TF-IDF top-k for a bag of search tokens (the disjunctive
/// ranked query of Section 3.1): the first `k` rows of
/// [`crate::classic::classic_tfidf`], via the pruned union.
pub fn topk_tfidf<S: AsRef<str>>(
    query_tokens: &[S],
    corpus: &Corpus,
    index: &InvertedIndex,
    stats: &ScoreStats,
    model: &crate::TfIdfModel,
    layout: IndexLayout,
    k: usize,
) -> ScoredHits {
    topk_tfidf_filtered(query_tokens, corpus, index, stats, model, layout, k, None)
}

/// [`topk_tfidf`] over one live-index segment: every cursor steps over the
/// segment's tombstoned entries, so deleted documents never reach the heap.
#[allow(clippy::too_many_arguments)]
pub fn topk_tfidf_filtered<S: AsRef<str>>(
    query_tokens: &[S],
    corpus: &Corpus,
    index: &InvertedIndex,
    stats: &ScoreStats,
    model: &crate::TfIdfModel,
    layout: IndexLayout,
    k: usize,
    live: Option<&DeleteSet>,
) -> ScoredHits {
    let cursors = tfidf_union_cursors(query_tokens, corpus, index, stats, model, layout, live);
    topk_union(cursors, UnionKind::Sum, k)
}

/// The tombstone-filtered scored cursors [`topk_tfidf_filtered`] unions —
/// factored out so a multi-segment caller can build each segment's cursors
/// (and read their [`union_bound`]) before deciding to evaluate it at all.
/// Token normalization (lowercase, sort, dedup) is deterministic, so every
/// segment folds the same token order and scores stay bit-identical to the
/// monolithic path.
#[allow(clippy::too_many_arguments)]
pub fn tfidf_union_cursors<'a, S: AsRef<str>>(
    query_tokens: &[S],
    corpus: &'a Corpus,
    index: &'a InvertedIndex,
    stats: &'a ScoreStats,
    model: &crate::TfIdfModel,
    layout: IndexLayout,
    live: Option<&'a DeleteSet>,
) -> Vec<Box<dyn ScoredCursor + 'a>> {
    let mut distinct: Vec<String> = query_tokens
        .iter()
        .map(|t| t.as_ref().to_lowercase())
        .collect();
    distinct.sort();
    distinct.dedup();
    distinct
        .iter()
        .filter_map(|t| {
            let id = corpus.token_id(t)?;
            let cur = index.scored_cursor(id, layout, TfIdfEntryScorer::new(t, model, stats));
            Some(wrap_live(cur, live))
        })
        .collect()
}

/// Streaming PRA top-k for a flat disjunction of tokens: the first `k` rows
/// of [`crate::bool_scores::run_bool_scored`] on the equivalent `OR` query,
/// via the pruned union.
pub fn topk_pra_disjunction<S: AsRef<str>>(
    query_tokens: &[S],
    corpus: &Corpus,
    index: &InvertedIndex,
    stats: &ScoreStats,
    model: &PraModel,
    layout: IndexLayout,
    k: usize,
) -> ScoredHits {
    topk_pra_disjunction_filtered(query_tokens, corpus, index, stats, model, layout, k, None)
}

/// [`topk_pra_disjunction`] over one live-index segment (see
/// [`topk_tfidf_filtered`]).
#[allow(clippy::too_many_arguments)]
pub fn topk_pra_disjunction_filtered<S: AsRef<str>>(
    query_tokens: &[S],
    corpus: &Corpus,
    index: &InvertedIndex,
    stats: &ScoreStats,
    model: &PraModel,
    layout: IndexLayout,
    k: usize,
    live: Option<&DeleteSet>,
) -> ScoredHits {
    let cursors = pra_union_cursors(query_tokens, corpus, index, stats, model, layout, live);
    topk_union(cursors, UnionKind::ProbOr, k)
}

/// The tombstone-filtered scored cursors [`topk_pra_disjunction_filtered`]
/// unions (tokens used exactly as given — PRA literals are not normalized),
/// factored out for multi-segment callers like [`tfidf_union_cursors`].
#[allow(clippy::too_many_arguments)]
pub fn pra_union_cursors<'a, S: AsRef<str>>(
    query_tokens: &[S],
    corpus: &'a Corpus,
    index: &'a InvertedIndex,
    stats: &ScoreStats,
    model: &PraModel,
    layout: IndexLayout,
    live: Option<&'a DeleteSet>,
) -> Vec<Box<dyn ScoredCursor + 'a>> {
    query_tokens
        .iter()
        .filter_map(|t| {
            let t = t.as_ref();
            let id = corpus.token_id(t)?;
            let cur = index.scored_cursor(id, layout, PraEntryScorer::new(t, model, stats));
            Some(wrap_live(cur, live))
        })
        .collect()
}
