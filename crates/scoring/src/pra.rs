//! Probabilistic scoring (Section 3.2): the probabilistic relational algebra
//! adapted to full-text relations.
//!
//! Tuple scores are probabilities in `[0, 1]`. The initial score of an
//! `R_token` tuple is `IDF/NF` as the paper suggests — we normalize by the
//! maximum possible idf (`ln(1 + db_size)`, attained at `df = 1`) so scores
//! land in `(0, 1]`.

use crate::stats::ScoreStats;
use crate::ScoringModel;
use ftsl_model::{NodeId, Position};
use ftsl_predicates::Predicate;

/// Probabilistic relational algebra scoring.
#[derive(Clone, Debug)]
pub struct PraModel {
    /// Precomputed normalization factor `ln(1 + db_size)`.
    max_idf: f64,
    idf_lookup: std::collections::HashMap<String, f64>,
}

impl PraModel {
    /// Build the model over a corpus.
    pub fn new(corpus: &ftsl_model::Corpus, stats: &ScoreStats) -> Self {
        let idf_lookup = corpus
            .interner()
            .iter()
            .map(|(id, name)| (name.to_string(), stats.idf(id)))
            .collect();
        Self::with_idf_table(idf_lookup, stats.db_size)
    }

    /// Build the model from a precomputed `token → idf` table and a
    /// collection size — how a live snapshot supplies collection-wide
    /// values spanning every segment's vocabulary.
    pub fn with_idf_table(
        idf_lookup: std::collections::HashMap<String, f64>,
        db_size: usize,
    ) -> Self {
        PraModel {
            max_idf: (1.0 + db_size as f64).ln(),
            idf_lookup,
        }
    }
}

impl ScoringModel for PraModel {
    fn token_tuple(&self, token: &str, _node: NodeId, _stats: &ScoreStats) -> f64 {
        let idf = self.idf_lookup.get(token).copied().unwrap_or(0.0);
        if self.max_idf > 0.0 {
            (idf / self.max_idf).clamp(0.0, 1.0)
        } else {
            0.0
        }
    }

    fn any_tuple(&self) -> f64 {
        1.0
    }

    fn context_tuple(&self) -> f64 {
        1.0
    }

    fn join(&self, s1: f64, s2: f64, _left_group: usize, _right_group: usize) -> f64 {
        s1 * s2
    }

    fn project(&self, scores: &[f64]) -> f64 {
        // 1 − ∏(1 − sᵢ): probabilistic OR of the collapsing tuples.
        1.0 - scores.iter().fold(1.0, |acc, &s| acc * (1.0 - s))
    }

    fn select(&self, s: f64, pred: &dyn Predicate, args: &[Position], consts: &[i64]) -> f64 {
        // The paper's example: f = 1 − |p1 − p2|/dist for the distance
        // predicate; other predicates keep f = 1.
        let f = if pred.name() == "distance" && args.len() == 2 && !consts.is_empty() {
            let dist = consts[0].max(1) as f64;
            let delta = f64::from(args[0].intervening(&args[1]));
            (1.0 - delta / dist).clamp(0.0, 1.0)
        } else {
            1.0
        };
        s * f
    }

    fn union(&self, s1: Option<f64>, s2: Option<f64>) -> f64 {
        let a = s1.unwrap_or(0.0);
        let b = s2.unwrap_or(0.0);
        1.0 - (1.0 - a) * (1.0 - b)
    }

    fn intersect(&self, s1: f64, s2: f64) -> f64 {
        s1 * s2
    }

    fn difference(&self, s1: f64) -> f64 {
        // Expr1 − Expr2 = Expr1 ∩ ¬Expr2; surviving tuples are absent from
        // Expr2 (score 0 there), so ¬Expr2 contributes factor 1.
        s1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsl_index::IndexBuilder;
    use ftsl_model::Corpus;

    fn model() -> (Corpus, ScoreStats, PraModel) {
        let corpus = Corpus::from_texts(&["a b", "a", "c d e"]);
        let index = IndexBuilder::new().build(&corpus);
        let stats = ScoreStats::compute(&corpus, &index);
        let model = PraModel::new(&corpus, &stats);
        (corpus, stats, model)
    }

    #[test]
    fn tuple_scores_are_probabilities() {
        let (corpus, stats, model) = model();
        for (_, name) in corpus.interner().iter() {
            let s = model.token_tuple(name, NodeId(0), &stats);
            assert!((0.0..=1.0).contains(&s), "{name}: {s}");
            assert!(s > 0.0);
        }
        // Rarer tokens score higher.
        assert!(
            model.token_tuple("c", NodeId(2), &stats) > model.token_tuple("a", NodeId(0), &stats)
        );
    }

    #[test]
    fn transformations_stay_in_unit_interval() {
        let (_, _, model) = model();
        assert!((model.join(0.7, 0.9, 3, 4) - 0.63).abs() < 1e-12);
        assert!((model.project(&[0.5, 0.5]) - 0.75).abs() < 1e-12);
        assert!((model.union(Some(0.5), Some(0.5)) - 0.75).abs() < 1e-12);
        assert_eq!(model.union(Some(0.4), None), 0.4);
        assert!((model.intersect(0.5, 0.5) - 0.25).abs() < 1e-12);
        assert_eq!(model.difference(0.8), 0.8);
    }

    #[test]
    fn distance_selection_scales_by_gap() {
        let (_, _, model) = model();
        let reg = ftsl_predicates::PredicateRegistry::with_builtins();
        let distance = reg.get(reg.lookup("distance").unwrap());
        let close = [Position::flat(0), Position::flat(1)];
        let far = [Position::flat(0), Position::flat(5)];
        let s_close = model.select(1.0, distance, &close, &[5]);
        let s_far = model.select(1.0, distance, &far, &[5]);
        assert!(s_close > s_far);
        assert!((0.0..=1.0).contains(&s_far));
    }
}
