//! TF-IDF scoring (Section 3.1).
//!
//! Each `R_t` tuple carries the per-occurrence TF-IDF mass
//! `w(t)·idf(t)/(unique_tokens(n)·‖n‖₂·‖q‖₂)` with the paper's implicit
//! weight `w(t) = idf(t)/unique_search_tokens`; summing a node's tuples
//! yields exactly its L2-normalized TF-IDF contribution for `t`. Every
//! transformation conserves per-node total score (the paper's "first law of
//! thermodynamics"): joins split mass across partners (per-node group
//! cardinalities — see the crate docs), projections re-aggregate it.

use crate::stats::ScoreStats;
use crate::ScoringModel;
use ftsl_model::{NodeId, Position};
use ftsl_predicates::Predicate;
use std::collections::HashMap;

/// TF-IDF scoring for one query's bag of search tokens.
#[derive(Clone, Debug)]
pub struct TfIdfModel {
    /// `idf(t)` per distinct search token.
    idf_by_token: HashMap<String, f64>,
    /// `unique_search_tokens`.
    unique_search_tokens: usize,
    /// `‖q‖₂`.
    query_norm: f64,
}

impl TfIdfModel {
    /// Build the model for a query's search tokens (duplicates allowed; the
    /// proof of Theorem 2 treats repeated tokens as weight-summed).
    pub fn for_query<S: AsRef<str>>(
        tokens: &[S],
        corpus: &ftsl_model::Corpus,
        stats: &ScoreStats,
    ) -> Self {
        Self::for_query_with_idf(tokens, |name| {
            corpus.token_id(name).map_or(0.0, |id| stats.idf(id))
        })
    }

    /// Build the model from an arbitrary idf source instead of one
    /// corpus+stats pair — how a live snapshot supplies *collection-wide*
    /// idf values that no single segment's corpus could resolve on its own
    /// (a query token may predate or postdate any given segment's
    /// vocabulary).
    pub fn for_query_with_idf<S: AsRef<str>>(tokens: &[S], idf_of: impl Fn(&str) -> f64) -> Self {
        let mut idf_by_token = HashMap::new();
        for t in tokens {
            let name = t.as_ref().to_lowercase();
            let idf = idf_of(&name);
            idf_by_token.insert(name, idf);
        }
        let unique_search_tokens = idf_by_token.len().max(1);
        // With w(t) = idf(t)/unique_search_tokens, ‖q‖₂ is the L2 norm of
        // the weight vector. Summed in sorted-token order so two models
        // over the same query agree to the last bit regardless of hash-map
        // iteration order (the live/monolithic differential suite compares
        // score bit patterns).
        let mut names: Vec<&String> = idf_by_token.keys().collect();
        names.sort();
        let sum_sq: f64 = names
            .iter()
            .map(|name| {
                let w = idf_by_token[*name] / unique_search_tokens as f64;
                w * w
            })
            .sum();
        let query_norm = if sum_sq > 0.0 { sum_sq.sqrt() } else { 1.0 };
        TfIdfModel {
            idf_by_token,
            unique_search_tokens,
            query_norm,
        }
    }

    /// `w(t) = idf(t)/unique_search_tokens`.
    pub fn weight(&self, token: &str) -> f64 {
        self.idf_by_token.get(token).copied().unwrap_or(0.0) / self.unique_search_tokens as f64
    }

    /// `idf(t)` for a search token (0 for tokens outside the query or the
    /// corpus vocabulary).
    pub fn token_idf(&self, token: &str) -> f64 {
        self.idf_by_token.get(token).copied().unwrap_or(0.0)
    }

    /// `‖q‖₂`.
    pub fn query_norm(&self) -> f64 {
        self.query_norm
    }
}

impl ScoringModel for TfIdfModel {
    fn token_tuple(&self, token: &str, node: NodeId, stats: &ScoreStats) -> f64 {
        let Some(&idf) = self.idf_by_token.get(token) else {
            return 0.0;
        };
        let w = idf / self.unique_search_tokens as f64;
        // Per-occurrence mass: summing occurs(n,t) of these gives
        // w(t)·tf(n,t)·idf(t)/(‖n‖₂·‖q‖₂).
        w * idf / (stats.unique_tokens(node) as f64 * stats.l2_norm(node) * self.query_norm)
    }

    fn any_tuple(&self) -> f64 {
        0.0
    }

    fn context_tuple(&self) -> f64 {
        0.0
    }

    fn join(&self, s1: f64, s2: f64, left_group: usize, right_group: usize) -> f64 {
        // t3 = t1/|R2| + t2/|R1| with per-node group cardinalities: the join
        // neither creates nor destroys score.
        s1 / right_group as f64 + s2 / left_group as f64
    }

    fn project(&self, scores: &[f64]) -> f64 {
        scores.iter().sum()
    }

    fn select(&self, s: f64, _pred: &dyn Predicate, _args: &[Position], _consts: &[i64]) -> f64 {
        s
    }

    fn union(&self, s1: Option<f64>, s2: Option<f64>) -> f64 {
        s1.unwrap_or(0.0) + s2.unwrap_or(0.0)
    }

    fn intersect(&self, s1: f64, s2: f64) -> f64 {
        s1.min(s2)
    }

    fn difference(&self, s1: f64) -> f64 {
        s1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsl_index::IndexBuilder;
    use ftsl_model::Corpus;

    #[test]
    fn token_tuple_mass_sums_to_classic_contribution() {
        let corpus = Corpus::from_texts(&["a a b", "b c"]);
        let index = IndexBuilder::new().build(&corpus);
        let stats = ScoreStats::compute(&corpus, &index);
        let model = TfIdfModel::for_query(&["a"], &corpus, &stats);
        let node = NodeId(0);
        let per_occurrence = model.token_tuple("a", node, &stats);
        let total = 2.0 * per_occurrence; // occurs(n0, a) = 2
        let a = corpus.token_id("a").unwrap();
        let idf = stats.idf(a);
        let tf = 2.0 / 2.0; // occurs / unique_tokens
        let expected = model.weight("a") * tf * idf / (stats.l2_norm(node) * model.query_norm());
        assert!((total - expected).abs() < 1e-12);
    }

    #[test]
    fn join_conserves_score() {
        let corpus = Corpus::from_texts(&["x"]);
        let index = IndexBuilder::new().build(&corpus);
        let stats = ScoreStats::compute(&corpus, &index);
        let model = TfIdfModel::for_query(&["x"], &corpus, &stats);
        let _ = stats;
        // 2 left tuples (0.3, 0.5), 3 right tuples (0.1 each): total in =
        // 0.8 + 0.3; total out over the 6 joined tuples must match.
        let left = [0.3, 0.5];
        let right = [0.1, 0.1, 0.1];
        let mut total = 0.0;
        for &l in &left {
            for &r in &right {
                total += model.join(l, r, left.len(), right.len());
            }
        }
        assert!((total - 1.1f64).abs() < 1e-12);
    }

    #[test]
    fn unknown_tokens_have_zero_mass() {
        let corpus = Corpus::from_texts(&["a"]);
        let index = IndexBuilder::new().build(&corpus);
        let stats = ScoreStats::compute(&corpus, &index);
        let model = TfIdfModel::for_query(&["missing"], &corpus, &stats);
        assert_eq!(model.token_tuple("missing", NodeId(0), &stats), 0.0);
        assert_eq!(model.weight("missing"), 0.0);
    }
}
