//! Scored BOOL evaluation (Section 5.3): "a scoring formula is associated
//! with each Boolean operator ... initially a score is associated with each
//! entry in the inverted lists and modified by each Boolean operator in the
//! query plan."
//!
//! Doc-level scores start as the probabilistic-OR collapse of the entry's
//! per-occurrence PRA scores; `AND` multiplies, `OR` combines
//! probabilistically, `NOT` complements.

use crate::pra::PraModel;
use crate::stats::ScoreStats;
use crate::ScoringModel;
use ftsl_index::InvertedIndex;
use ftsl_lang::SurfaceQuery;
use ftsl_model::{Corpus, NodeId};
use std::collections::BTreeMap;

/// Evaluate a BOOL-shaped query with PRA scoring; returns `(node, score)`
/// for every node with score > 0, descending by score.
pub fn run_bool_scored(
    query: &SurfaceQuery,
    corpus: &Corpus,
    index: &InvertedIndex,
    stats: &ScoreStats,
    model: &PraModel,
) -> Result<Vec<(NodeId, f64)>, String> {
    let scores = eval(query, corpus, index, stats, model)?;
    let mut out: Vec<(NodeId, f64)> = scores.into_iter().filter(|(_, s)| *s > 0.0).collect();
    // Total order (not partial_cmp-with-Equal-fallback): a NaN leak would
    // otherwise silently scramble the ranking.
    crate::topk::sort_ranked(&mut out);
    Ok(out)
}

/// Dense doc-score maps; absent nodes have score 0.
fn eval(
    query: &SurfaceQuery,
    corpus: &Corpus,
    index: &InvertedIndex,
    stats: &ScoreStats,
    model: &PraModel,
) -> Result<BTreeMap<NodeId, f64>, String> {
    match query {
        SurfaceQuery::Lit(tok) => {
            let mut out = BTreeMap::new();
            if let Some(id) = corpus.token_id(tok) {
                // Residency-safe decoded view (cached under blocks-only).
                for (node, positions) in index.decoded_list(id).iter() {
                    let per = model.token_tuple(tok, node, stats);
                    let doc_score = model.project(&vec![per; positions.len()]);
                    out.insert(node, doc_score);
                }
            }
            Ok(out)
        }
        SurfaceQuery::Any => {
            let mut out = BTreeMap::new();
            for (node, _) in index.decoded_any().iter() {
                out.insert(node, 1.0);
            }
            Ok(out)
        }
        SurfaceQuery::Not(inner) => {
            let inner_scores = eval(inner, corpus, index, stats, model)?;
            let mut out = BTreeMap::new();
            for node in corpus.node_ids() {
                let s = inner_scores.get(&node).copied().unwrap_or(0.0);
                out.insert(node, 1.0 - s);
            }
            Ok(out)
        }
        SurfaceQuery::And(a, b) => {
            let left = eval(a, corpus, index, stats, model)?;
            let right = eval(b, corpus, index, stats, model)?;
            let mut out = BTreeMap::new();
            for (node, s1) in left {
                if let Some(&s2) = right.get(&node) {
                    out.insert(node, s1 * s2);
                }
            }
            Ok(out)
        }
        SurfaceQuery::Or(a, b) => {
            let mut left = eval(a, corpus, index, stats, model)?;
            let right = eval(b, corpus, index, stats, model)?;
            for (node, s2) in right {
                let s1 = left.get(&node).copied().unwrap_or(0.0);
                left.insert(node, 1.0 - (1.0 - s1) * (1.0 - s2));
            }
            Ok(left)
        }
        other => Err(format!("construct {} is not in BOOL", other.render())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsl_index::IndexBuilder;
    use ftsl_lang::{parse, Mode};

    fn setup() -> (Corpus, InvertedIndex, ScoreStats, PraModel) {
        let corpus = Corpus::from_texts(&[
            "software users",
            "software users testing",
            "usability",
            "software testing",
            "users users users software",
        ]);
        let index = IndexBuilder::new().build(&corpus);
        let stats = ScoreStats::compute(&corpus, &index);
        let model = PraModel::new(&corpus, &stats);
        (corpus, index, stats, model)
    }

    #[test]
    fn scored_bool_matches_boolean_semantics_support() {
        let (corpus, index, stats, model) = setup();
        let q = parse(
            "('software' AND 'users' AND NOT 'testing') OR 'usability'",
            Mode::Bool,
        )
        .unwrap();
        let ranked = run_bool_scored(&q, &corpus, &index, &stats, &model).unwrap();
        let nodes: Vec<u32> = ranked.iter().map(|(n, _)| n.0).collect();
        // Same support as the unscored engine: nodes 0, 2, 4 (node 1 is
        // blocked by NOT 'testing' and scores 1·(1−s) < 1... it may retain a
        // nonzero residual score; Boolean-certain matches must rank higher).
        for expected in [0u32, 2, 4] {
            assert!(
                nodes.contains(&expected),
                "missing node {expected}: {nodes:?}"
            );
        }
        for (_, s) in &ranked {
            assert!((0.0..=1.0).contains(s));
        }
    }

    #[test]
    fn repeated_occurrences_increase_doc_score() {
        let (corpus, index, stats, model) = setup();
        let q = parse("'users'", Mode::Bool).unwrap();
        let ranked = run_bool_scored(&q, &corpus, &index, &stats, &model).unwrap();
        let score = |id: u32| ranked.iter().find(|(n, _)| n.0 == id).map(|(_, s)| *s);
        // Node 4 has three occurrences of 'users'; node 0 has one.
        assert!(score(4).unwrap() > score(0).unwrap());
    }

    #[test]
    fn non_bool_constructs_error() {
        let (corpus, index, stats, model) = setup();
        let q = parse("SOME p1 (p1 HAS 'x')", Mode::Comp).unwrap();
        assert!(run_bool_scored(&q, &corpus, &index, &stats, &model).is_err());
    }
}
