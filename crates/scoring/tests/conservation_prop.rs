//! The "first law of thermodynamics" for TF-IDF (Section 3.1): joins and
//! projections conserve per-node total score through arbitrary
//! join/project chains over token relations.

use ftsl_algebra::expr::ops::*;
use ftsl_algebra::AlgExpr;
use ftsl_index::IndexBuilder;
use ftsl_model::{Corpus, NodeId};
use ftsl_predicates::PredicateRegistry;
use ftsl_scoring::{ScoreStats, ScoredEvaluator, TfIdfModel};
use proptest::prelude::*;
use std::collections::BTreeMap;

const VOCAB: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

fn arb_corpus() -> impl Strategy<Value = Corpus> {
    proptest::collection::vec(proptest::collection::vec(0..VOCAB.len(), 1..12), 2..6).prop_map(
        |docs| {
            let texts: Vec<String> = docs
                .into_iter()
                .map(|toks| {
                    toks.into_iter()
                        .map(|t| VOCAB[t])
                        .collect::<Vec<_>>()
                        .join(" ")
                })
                .collect();
            Corpus::from_texts(&texts)
        },
    )
}

/// Per-node total score of a relation.
fn per_node_totals(ev: &ScoredEvaluator<'_, TfIdfModel>, expr: &AlgExpr) -> BTreeMap<NodeId, f64> {
    let rel = ev.eval(expr).expect("evaluates");
    let mut totals: BTreeMap<NodeId, f64> = BTreeMap::new();
    for (n, _, s) in &rel.rows {
        *totals.entry(*n).or_insert(0.0) += s;
    }
    totals
}

/// Property-case count: `FTSL_PROPTEST_CASES` raises it for the scheduled
/// deep-fuzz CI job; the default keeps PR builds quick.
fn prop_cases() -> u32 {
    std::env::var("FTSL_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(prop_cases()))]

    /// Join conserves the per-node total: for nodes where both sides have
    /// tuples, total(join) = total(left) + total(right).
    #[test]
    fn join_conserves_per_node_score(
        corpus in arb_corpus(),
        t1 in 0..VOCAB.len(),
        t2 in 0..VOCAB.len(),
    ) {
        prop_assume!(t1 != t2);
        let index = IndexBuilder::new().build(&corpus);
        let reg = PredicateRegistry::with_builtins();
        let stats = ScoreStats::compute(&corpus, &index);
        let model = TfIdfModel::for_query(&[VOCAB[t1], VOCAB[t2]], &corpus, &stats);
        let ev = ScoredEvaluator::new(&corpus, &index, &reg, &stats, model);

        let left = per_node_totals(&ev, &token(VOCAB[t1]));
        let right = per_node_totals(&ev, &token(VOCAB[t2]));
        let joined = per_node_totals(&ev, &join(token(VOCAB[t1]), token(VOCAB[t2])));

        for (node, total) in &joined {
            let expected = left.get(node).copied().unwrap_or(0.0)
                + right.get(node).copied().unwrap_or(0.0);
            prop_assert!(
                (total - expected).abs() < 1e-9,
                "node {node}: joined {total} vs parts {expected}"
            );
        }
    }

    /// Projection re-aggregates without losing score, at any column subset.
    #[test]
    fn projection_conserves_per_node_score(
        corpus in arb_corpus(),
        t1 in 0..VOCAB.len(),
        t2 in 0..VOCAB.len(),
        keep_first in any::<bool>(),
    ) {
        prop_assume!(t1 != t2);
        let index = IndexBuilder::new().build(&corpus);
        let reg = PredicateRegistry::with_builtins();
        let stats = ScoreStats::compute(&corpus, &index);
        let model = TfIdfModel::for_query(&[VOCAB[t1], VOCAB[t2]], &corpus, &stats);
        let ev = ScoredEvaluator::new(&corpus, &index, &reg, &stats, model);

        let joined = join(token(VOCAB[t1]), token(VOCAB[t2]));
        let before = per_node_totals(&ev, &joined);
        let cols: &[usize] = if keep_first { &[0] } else { &[] };
        let after = per_node_totals(&ev, &project(joined, cols));

        prop_assert_eq!(before.len(), after.len());
        for (node, total) in &after {
            let expected = before[node];
            prop_assert!(
                (total - expected).abs() < 1e-9,
                "node {node}: projected {total} vs {expected}"
            );
        }
    }

    /// Union adds scores; the three-way identity
    /// total(a ∪ b) + total(a ∩ b-ish overlap) is avoided by using disjoint
    /// token relations, where total(a ∪ b) = total(a) + total(b) exactly.
    #[test]
    fn union_of_disjoint_relations_adds_scores(
        corpus in arb_corpus(),
        t1 in 0..VOCAB.len(),
        t2 in 0..VOCAB.len(),
    ) {
        prop_assume!(t1 != t2);
        let index = IndexBuilder::new().build(&corpus);
        let reg = PredicateRegistry::with_builtins();
        let stats = ScoreStats::compute(&corpus, &index);
        let model = TfIdfModel::for_query(&[VOCAB[t1], VOCAB[t2]], &corpus, &stats);
        let ev = ScoredEvaluator::new(&corpus, &index, &reg, &stats, model);

        let a = per_node_totals(&ev, &token(VOCAB[t1]));
        let b = per_node_totals(&ev, &token(VOCAB[t2]));
        let u = per_node_totals(&ev, &union(token(VOCAB[t1]), token(VOCAB[t2])));
        for (node, total) in &u {
            let expected =
                a.get(node).copied().unwrap_or(0.0) + b.get(node).copied().unwrap_or(0.0);
            prop_assert!((total - expected).abs() < 1e-9);
        }
    }
}
