//! Property test for Theorem 2: the TF-IDF propagation of scores through
//! the algebra preserves classic TF-IDF semantics for conjunctive and
//! disjunctive queries.

use ftsl_algebra::expr::ops::*;
use ftsl_index::IndexBuilder;
use ftsl_model::Corpus;
use ftsl_predicates::PredicateRegistry;
use ftsl_scoring::classic::classic_tfidf;
use ftsl_scoring::{ScoreStats, ScoredEvaluator, TfIdfModel};
use proptest::prelude::*;

const VOCAB: [&str; 5] = ["alpha", "beta", "gamma", "delta", "eps"];

fn arb_corpus() -> impl Strategy<Value = Corpus> {
    proptest::collection::vec(proptest::collection::vec(0..VOCAB.len(), 1..10), 2..7).prop_map(
        |docs| {
            let texts: Vec<String> = docs
                .into_iter()
                .map(|toks| {
                    toks.into_iter()
                        .map(|t| VOCAB[t])
                        .collect::<Vec<_>>()
                        .join(" ")
                })
                .collect();
            Corpus::from_texts(&texts)
        },
    )
}

/// Property-case count: `FTSL_PROPTEST_CASES` raises it for the scheduled
/// deep-fuzz CI job; the default keeps PR builds quick.
fn prop_cases() -> u32 {
    std::env::var("FTSL_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(prop_cases()))]

    /// Conjunctive: π_CNode(R_t1 ⋈ ... ⋈ R_tk) scores equal classic TF-IDF
    /// on the nodes containing all tokens.
    #[test]
    fn conjunctive_queries_preserve_classic_tfidf(
        corpus in arb_corpus(),
        token_idx in proptest::collection::btree_set(0..VOCAB.len(), 1..4),
    ) {
        let tokens: Vec<&str> = token_idx.iter().map(|&i| VOCAB[i]).collect();
        let index = IndexBuilder::new().build(&corpus);
        let reg = PredicateRegistry::with_builtins();
        let stats = ScoreStats::compute(&corpus, &index);
        let model = TfIdfModel::for_query(&tokens, &corpus, &stats);

        let expr = tokens
            .iter()
            .map(|t| token(t))
            .reduce(join)
            .expect("non-empty");
        let expr = project_nodes(expr);

        let ev = ScoredEvaluator::new(&corpus, &index, &reg, &stats, model.clone());
        let got = ev.rank(&expr).expect("evaluates");

        let classic = classic_tfidf(&tokens, &corpus, &stats, &model);
        for (node, score) in &got {
            let reference = classic
                .iter()
                .find(|(n, _)| n == node)
                .map(|(_, s)| *s)
                .expect("conjunctive results contain all tokens");
            prop_assert!(
                (score - reference).abs() < 1e-9,
                "node {node}: propagated {score} vs classic {reference} (tokens {tokens:?})"
            );
        }
    }

    /// Disjunctive: π_CNode(R_t1 ∪ ... ∪ R_tk) scores equal classic TF-IDF
    /// on nodes containing at least one token.
    #[test]
    fn disjunctive_queries_preserve_classic_tfidf(
        corpus in arb_corpus(),
        token_idx in proptest::collection::btree_set(0..VOCAB.len(), 1..4),
    ) {
        let tokens: Vec<&str> = token_idx.iter().map(|&i| VOCAB[i]).collect();
        let index = IndexBuilder::new().build(&corpus);
        let reg = PredicateRegistry::with_builtins();
        let stats = ScoreStats::compute(&corpus, &index);
        let model = TfIdfModel::for_query(&tokens, &corpus, &stats);

        let expr = tokens
            .iter()
            .map(|t| token(t))
            .reduce(union)
            .expect("non-empty");
        let expr = project_nodes(expr);

        let ev = ScoredEvaluator::new(&corpus, &index, &reg, &stats, model.clone());
        let got = ev.rank(&expr).expect("evaluates");
        let classic = classic_tfidf(&tokens, &corpus, &stats, &model);

        prop_assert_eq!(got.len(), classic.len(), "support mismatch");
        for (node, score) in &got {
            let reference = classic
                .iter()
                .find(|(n, _)| n == node)
                .map(|(_, s)| *s)
                .expect("same support");
            prop_assert!(
                (score - reference).abs() < 1e-9,
                "node {node}: propagated {score} vs classic {reference}"
            );
        }
    }

    /// The PRA model keeps every intermediate and final score in [0, 1] on
    /// arbitrary operator trees.
    #[test]
    fn pra_scores_are_probabilities(
        corpus in arb_corpus(),
        t1 in 0..VOCAB.len(),
        t2 in 0..VOCAB.len(),
        d in 0..6i64,
    ) {
        let index = IndexBuilder::new().build(&corpus);
        let reg = PredicateRegistry::with_builtins();
        let stats = ScoreStats::compute(&corpus, &index);
        let model = ftsl_scoring::PraModel::new(&corpus, &stats);
        let distance = reg.lookup("distance").unwrap();
        let expr = project_nodes(select(
            join(token(VOCAB[t1]), token(VOCAB[t2])),
            distance,
            &[0, 1],
            &[d],
        ));
        let ev = ScoredEvaluator::new(&corpus, &index, &reg, &stats, model);
        let ranked = ev.rank(&expr).expect("evaluates");
        for (node, s) in ranked {
            prop_assert!((0.0..=1.0).contains(&s), "node {node} score {s}");
        }
    }
}
