//! Differential property tests for streaming top-k retrieval: for random
//! corpora and queries, the pruned/streaming evaluators must return exactly
//! the first `k` rows of the exhaustive oracles — same nodes, same scores
//! (within 1e-9 for TF-IDF, whose summation order differs; bit-comparable
//! for PRA trees, which reuse the oracle's arithmetic), same tie order — on
//! both physical layouts.

use ftsl_index::{IndexBuilder, IndexLayout, InvertedIndex};
use ftsl_lang::SurfaceQuery;
use ftsl_model::{Corpus, NodeId};
use ftsl_scoring::bool_scores::run_bool_scored;
use ftsl_scoring::classic::classic_tfidf;
use ftsl_scoring::stream::{run_bool_topk, topk_pra_disjunction, topk_tfidf};
use ftsl_scoring::{PraModel, ScoreStats, TfIdfModel};
use proptest::prelude::*;

const VOCAB: [&str; 6] = ["alpha", "beta", "gamma", "delta", "eps", "zeta"];
const LAYOUTS: [IndexLayout; 2] = [IndexLayout::Decoded, IndexLayout::Blocks];

fn arb_corpus() -> impl Strategy<Value = Corpus> {
    proptest::collection::vec(proptest::collection::vec(0..VOCAB.len(), 0..12), 1..10).prop_map(
        |docs| {
            let texts: Vec<String> = docs
                .into_iter()
                .map(|toks| {
                    toks.into_iter()
                        .map(|t| VOCAB[t])
                        .collect::<Vec<_>>()
                        .join(" ")
                })
                .collect();
            Corpus::from_texts(&texts)
        },
    )
}

/// Random BOOL-shaped surface queries (literals, AND, OR, NOT).
fn arb_bool_query(depth: u32) -> BoxedStrategy<SurfaceQuery> {
    let leaf = prop_oneof![
        (0..VOCAB.len()).prop_map(|t| SurfaceQuery::Lit(VOCAB[t].to_string())),
        // Occasionally a token outside the corpus vocabulary.
        Just(SurfaceQuery::Lit("outofvocab".to_string())),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = arb_bool_query(depth - 1);
    prop_oneof![
        2 => leaf,
        2 => (sub.clone(), sub.clone())
            .prop_map(|(a, b)| SurfaceQuery::And(Box::new(a), Box::new(b))),
        2 => (sub.clone(), sub.clone())
            .prop_map(|(a, b)| SurfaceQuery::Or(Box::new(a), Box::new(b))),
        1 => sub.prop_map(|q| SurfaceQuery::Not(Box::new(q))),
    ]
    .boxed()
}

fn setup(corpus: &Corpus) -> (InvertedIndex, ScoreStats) {
    let index = IndexBuilder::new().build(corpus);
    let stats = ScoreStats::compute(corpus, &index);
    (index, stats)
}

/// `got` must equal the first `k` of `oracle`.
///
/// With `tol == 0` the comparison is strict (same nodes, same scores, same
/// tie order — used where the streaming evaluator reuses the oracle's
/// arithmetic bit-for-bit). With `tol > 0` the two sides compute the same
/// sums in different association orders, so scores may differ by float
/// noise and *near-ties* (oracle scores within `tol` of each other) may
/// legitimately swap ranks: each reported node must then carry an oracle
/// score within `tol` of the oracle's score at that rank.
fn assert_prefix(got: &[(NodeId, f64)], oracle: &[(NodeId, f64)], k: usize, tol: f64, ctx: &str) {
    let want = &oracle[..k.min(oracle.len())];
    assert_eq!(
        got.len(),
        want.len(),
        "{ctx}: got {got:?}, oracle prefix {want:?}"
    );
    if tol == 0.0 {
        assert_eq!(got, want, "{ctx}: exact prefix diverged");
        return;
    }
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            (g.1 - w.1).abs() <= tol,
            "{ctx}: score at rank {i} diverged: {} vs {}",
            g.1,
            w.1
        );
        let oracle_score = oracle
            .iter()
            .find(|(n, _)| *n == g.0)
            .unwrap_or_else(|| panic!("{ctx}: node {} not in oracle: {got:?}", g.0 .0))
            .1;
        assert!(
            (oracle_score - w.1).abs() <= tol,
            "{ctx}: node {} (oracle score {oracle_score}) ranked {i} where the \
             oracle has score {}: {got:?} vs {want:?}",
            g.0 .0,
            w.1
        );
    }
}

/// Property-case count: `FTSL_PROPTEST_CASES` raises it for the scheduled
/// deep-fuzz CI job; the default keeps PR builds quick.
fn prop_cases() -> u32 {
    std::env::var("FTSL_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(prop_cases()))]

    /// Pruned TF-IDF union == first k of classic cosine TF-IDF.
    #[test]
    fn tfidf_topk_matches_classic_oracle(
        corpus in arb_corpus(),
        token_idx in proptest::collection::btree_set(0..VOCAB.len(), 1..5),
        k in 1usize..8,
    ) {
        let tokens: Vec<&str> = token_idx.iter().map(|&i| VOCAB[i]).collect();
        let (index, stats) = setup(&corpus);
        let model = TfIdfModel::for_query(&tokens, &corpus, &stats);
        let oracle = classic_tfidf(&tokens, &corpus, &stats, &model);
        for layout in LAYOUTS {
            let got = topk_tfidf(&tokens, &corpus, &index, &stats, &model, layout, k);
            assert_prefix(&got.hits, &oracle, k, 1e-9, &format!("tfidf {layout:?} k={k}"));
        }
    }

    /// Pruned PRA union over a flat disjunction == first k of the
    /// exhaustive scored-BOOL oracle on the equivalent OR query.
    #[test]
    fn pra_disjunction_topk_matches_bool_oracle(
        corpus in arb_corpus(),
        token_idx in proptest::collection::btree_set(0..VOCAB.len(), 1..5),
        k in 1usize..8,
    ) {
        let tokens: Vec<&str> = token_idx.iter().map(|&i| VOCAB[i]).collect();
        let (index, stats) = setup(&corpus);
        let model = PraModel::new(&corpus, &stats);
        let query = tokens
            .iter()
            .map(|t| SurfaceQuery::Lit(t.to_string()))
            .reduce(|a, b| SurfaceQuery::Or(Box::new(a), Box::new(b)))
            .expect("non-empty");
        let oracle = run_bool_scored(&query, &corpus, &index, &stats, &model).expect("oracle");
        for layout in LAYOUTS {
            let got =
                topk_pra_disjunction(&tokens, &corpus, &index, &stats, &model, layout, k);
            assert_prefix(&got.hits, &oracle, k, 1e-9, &format!("pra-or {layout:?} k={k}"));
        }
    }

    /// Streaming evaluation of arbitrary BOOL trees (AND/OR/NOT) == first k
    /// of the exhaustive oracle, with bit-identical arithmetic.
    #[test]
    fn bool_tree_topk_matches_exhaustive_oracle(
        corpus in arb_corpus(),
        query in arb_bool_query(3),
        k in 1usize..8,
    ) {
        let (index, stats) = setup(&corpus);
        let model = PraModel::new(&corpus, &stats);
        let oracle = run_bool_scored(&query, &corpus, &index, &stats, &model).expect("oracle");
        for layout in LAYOUTS {
            let got = run_bool_topk(&query, &corpus, &index, &stats, &model, layout, k)
                .expect("streaming");
            assert_prefix(
                &got.hits,
                &oracle,
                k,
                0.0,
                &format!("bool {layout:?} k={k} query={}", query.render()),
            );
        }
    }

    /// Streaming never decodes more entries than the corpus holds, and the
    /// pruned union's counters never exceed an exhaustive walk of the same
    /// lists.
    #[test]
    fn pruned_union_work_is_bounded_by_exhaustive(
        corpus in arb_corpus(),
        token_idx in proptest::collection::btree_set(0..VOCAB.len(), 1..5),
        k in 1usize..4,
    ) {
        let tokens: Vec<&str> = token_idx.iter().map(|&i| VOCAB[i]).collect();
        let (index, stats) = setup(&corpus);
        let model = TfIdfModel::for_query(&tokens, &corpus, &stats);
        let exhaustive_entries: u64 = tokens
            .iter()
            .filter_map(|t| corpus.token_id(t))
            .map(|id| index.list(id).num_entries() as u64)
            .sum();
        for layout in LAYOUTS {
            let got = topk_tfidf(&tokens, &corpus, &index, &stats, &model, layout, k);
            prop_assert!(
                got.counters.entries <= exhaustive_entries,
                "{layout:?}: decoded {} of {exhaustive_entries}",
                got.counters.entries
            );
        }
    }
}
