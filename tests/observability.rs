//! The observed query end to end: `EXPLAIN ANALYZE` span trees with
//! per-stage wall time and counter deltas, and — the paper's central
//! distinction made visible — correct attribution of whether a proximity
//! query was answered by the word-pair auxiliary index or fell back to
//! position intersection.

use ftsl::core::{Ftsl, LiveFtsl};
use ftsl::exec::engine::ExecOptions;

fn corpus() -> Vec<&'static str> {
    vec![
        "the kernel scheduler balances threads across cores",
        "a kernel module can preempt the scheduler",
        "schedulers and kernels are classic systems topics",
        "an unrelated document about usability testing",
    ]
}

#[test]
fn explain_analyze_profiles_a_proximity_query_on_the_pair_path() {
    let e = Ftsl::from_texts(&corpus());
    // distance(a,b,8) tightens to a forward gap of 9, within the default
    // pair window (16): answered from the word-pair list. (The surface
    // `dist` sugar lowers through an ANY-scan shape outside the pair
    // fragment; the quantified form is the paper's pair-covered core.)
    let text = e
        .explain_analyze("SOME a SOME b (a HAS 'kernel' AND b HAS 'scheduler' AND distance(a,b,8))")
        .unwrap();
    assert!(text.contains("language class: PPRED"), "{text}");
    assert!(text.contains("engine: PPRED"), "{text}");
    assert!(text.contains("hits:"), "{text}");
    // The span tree: parse, execute, engine stages, each with wall time.
    for span in ["parse+rewrite", "execute", "engine PPRED"] {
        assert!(text.contains(span), "missing span {span} in:\n{text}");
    }
    assert!(text.contains("µs"), "spans carry wall time:\n{text}");
    // Pair-path attribution.
    assert!(
        text.contains("pair path: word-pair list walk"),
        "within-window dist should be answered from the pair index:\n{text}"
    );
    // Counter deltas surface as span attributes.
    assert!(
        text.contains("pair_entries="),
        "pair-list walk reports pair_entries:\n{text}"
    );
    // Residency footprint trailer.
    assert!(text.contains("index: "), "{text}");
}

#[test]
fn explain_analyze_attributes_the_position_intersection_fallback() {
    let e = Ftsl::from_texts(&corpus());
    // distance(a,b,30) needs a forward gap of 31, beyond the default pair
    // window (16): recognized but not covered, so the engine falls back
    // to position intersection.
    let text = e
        .explain_analyze(
            "SOME a SOME b (a HAS 'kernel' AND b HAS 'scheduler' AND distance(a,b,30))",
        )
        .unwrap();
    assert!(
        text.contains("pair path: not covered — position-intersection fallback"),
        "over-window dist must attribute the fallback:\n{text}"
    );
    assert!(!text.contains("pair path: word-pair list walk"), "{text}");
}

#[test]
fn explain_analyze_attributes_disabled_pair_rewrite() {
    let e = Ftsl::from_texts(&corpus()).with_options(ExecOptions {
        use_pairs: false,
        ..ExecOptions::default()
    });
    let text = e
        .explain_analyze("SOME a SOME b (a HAS 'kernel' AND b HAS 'scheduler' AND distance(a,b,8))")
        .unwrap();
    assert!(
        text.contains("pair path: rewrite disabled by options"),
        "use_pairs=false must be visible in the profile:\n{text}"
    );
}

#[test]
fn explain_analyze_on_a_live_engine_shows_segments() {
    let engine = LiveFtsl::new();
    for t in corpus() {
        engine.add(t);
    }
    engine.flush();
    engine.add("a buffered kernel document"); // stays in the live buffer
    let text = engine.explain_analyze("'kernel' AND 'scheduler'").unwrap();
    assert!(text.contains("snapshot: version"), "{text}");
    assert!(text.contains("segment(s)"), "{text}");
    assert!(
        text.contains("segment 0:"),
        "per-segment footprint:\n{text}"
    );
    assert!(text.contains("engine BOOL"), "{text}");
}

#[test]
fn traces_are_absent_by_default_and_present_on_request() {
    let e = Ftsl::from_texts(&corpus());
    let plain = e.search("'kernel'").unwrap();
    assert!(plain.trace.is_none(), "tracing is opt-in");

    let traced_engine = Ftsl::from_texts(&corpus()).with_options(ExecOptions {
        trace: true,
        ..ExecOptions::default()
    });
    let traced = traced_engine.search("'kernel'").unwrap();
    let trace = traced.trace.expect("trace requested");
    let engine_span = trace.find("engine BOOL").expect("engine span");
    assert!(
        engine_span.attr("entries").unwrap_or(0) > 0,
        "engine span carries counter deltas:\n{}",
        trace.render()
    );
}
