//! Cross-crate integration: every engine agrees on the languages it
//! supports, over a realistic synthetic corpus.

use ftsl::corpus::SynthConfig;
use ftsl::exec::engine::{EngineKind, ExecOptions, Executor};
use ftsl::index::IndexBuilder;
use ftsl::lang::{parse, Mode};
use ftsl::predicates::PredicateRegistry;

fn fixture() -> (
    ftsl::model::Corpus,
    ftsl::index::InvertedIndex,
    PredicateRegistry,
) {
    let corpus = SynthConfig::small()
        .plant("apple", 0.5, 3)
        .plant("banana", 0.4, 2)
        .plant("cherry", 0.3, 2)
        .build();
    let index = IndexBuilder::new().build(&corpus);
    (corpus, index, PredicateRegistry::with_builtins())
}

const PPRED_QUERIES: &[&str] = &[
    "'apple' AND 'banana'",
    "SOME p1 SOME p2 (p1 HAS 'apple' AND p2 HAS 'banana' AND distance(p1,p2,10))",
    "SOME p1 SOME p2 (p1 HAS 'apple' AND p2 HAS 'banana' AND ordered(p1,p2))",
    "SOME p1 SOME p2 (p1 HAS 'apple' AND p2 HAS 'cherry' AND samepara(p1,p2))",
    "SOME p1 SOME p2 SOME p3 (p1 HAS 'apple' AND p2 HAS 'banana' AND p3 HAS 'cherry' \
     AND window(p1,p2,40) AND ordered(p2,p3))",
    "SOME p1 (p1 HAS 'apple' AND SOME p2 (p2 HAS 'banana' AND distance(p1,p2,6))) \
     AND NOT 'cherry'",
];

const NPRED_QUERIES: &[&str] = &[
    "SOME p1 SOME p2 (p1 HAS 'apple' AND p2 HAS 'apple' AND diffpos(p1,p2))",
    "SOME p1 SOME p2 (p1 HAS 'apple' AND p2 HAS 'banana' AND not_distance(p1,p2,15))",
    "SOME p1 SOME p2 (p1 HAS 'apple' AND p2 HAS 'banana' AND not_samepara(p1,p2))",
    "SOME p1 SOME p2 SOME p3 (p1 HAS 'apple' AND p2 HAS 'banana' AND p3 HAS 'cherry' \
     AND not_distance(p1,p2,5) AND ordered(p1,p3))",
];

#[test]
fn ppred_queries_agree_across_all_capable_engines() {
    let (corpus, index, reg) = fixture();
    let exec = Executor::new(&corpus, &index, &reg);
    for q in PPRED_QUERIES {
        let surface = parse(q, Mode::Comp).unwrap();
        let ppred = exec.run_surface(&surface, EngineKind::Ppred).unwrap();
        let npred = exec.run_surface(&surface, EngineKind::Npred).unwrap();
        let comp = exec.run_surface(&surface, EngineKind::Comp).unwrap();
        assert_eq!(ppred.nodes, npred.nodes, "PPRED vs NPRED on {q}");
        assert_eq!(ppred.nodes, comp.nodes, "PPRED vs COMP on {q}");
    }
}

#[test]
fn npred_queries_agree_under_all_strategies() {
    let (corpus, index, reg) = fixture();
    let partial = Executor::new(&corpus, &index, &reg);
    let full = Executor::with_options(
        &corpus,
        &index,
        &reg,
        ExecOptions {
            npred_full_permutations: true,
            ..Default::default()
        },
    );
    let parallel = Executor::with_options(
        &corpus,
        &index,
        &reg,
        ExecOptions {
            npred_full_permutations: true,
            npred_parallel: true,
            ..Default::default()
        },
    );
    for q in NPRED_QUERIES {
        let surface = parse(q, Mode::Comp).unwrap();
        let a = partial.run_surface(&surface, EngineKind::Npred).unwrap();
        let b = full.run_surface(&surface, EngineKind::Npred).unwrap();
        let c = parallel.run_surface(&surface, EngineKind::Npred).unwrap();
        let reference = partial.run_surface(&surface, EngineKind::Comp).unwrap();
        assert_eq!(a.nodes, reference.nodes, "partial orders on {q}");
        assert_eq!(b.nodes, reference.nodes, "full permutations on {q}");
        assert_eq!(c.nodes, reference.nodes, "parallel threads on {q}");
    }
}

#[test]
fn streaming_counters_beat_comp_on_positional_queries() {
    let (corpus, index, reg) = fixture();
    let exec = Executor::new(&corpus, &index, &reg);
    let q = "SOME p1 SOME p2 (p1 HAS 'apple' AND p2 HAS 'banana' AND distance(p1,p2,10))";
    let surface = parse(q, Mode::Comp).unwrap();
    let ppred = exec.run_surface(&surface, EngineKind::Ppred).unwrap();
    let comp = exec.run_surface(&surface, EngineKind::Comp).unwrap();
    assert!(
        ppred.counters.total() < comp.counters.total(),
        "PPRED {:?} should do less work than COMP {:?}",
        ppred.counters,
        comp.counters
    );
}

#[test]
fn index_roundtrip_through_persistence() {
    let (corpus, index, reg) = fixture();
    let bytes = ftsl::index::persist::encode(&index);
    let decoded = ftsl::index::persist::decode(bytes).unwrap();
    let exec1 = Executor::new(&corpus, &index, &reg);
    let exec2 = Executor::new(&corpus, &decoded, &reg);
    for q in PPRED_QUERIES {
        let surface = parse(q, Mode::Comp).unwrap();
        let a = exec1.run_surface(&surface, EngineKind::Auto).unwrap();
        let b = exec2.run_surface(&surface, EngineKind::Auto).unwrap();
        assert_eq!(a.nodes, b.nodes, "persisted index diverged on {q}");
    }
}
