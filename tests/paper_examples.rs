//! Every worked example in the paper, end to end through the facade.

use ftsl::core::Ftsl;
use ftsl::exec::EngineKind;
use ftsl::lang::Mode;

fn engine() -> Ftsl {
    Ftsl::from_texts(&[
        // n0: Figure 1's book element.
        ftsl::model::corpus::figure1_book_text(),
        // n1: test + usability far apart.
        "a test of many long running procedures that eventually mention usability",
        // n2: test twice, no usability.
        "this test is a test of something else entirely",
        // n3: neither.
        "nothing relevant whatsoever",
        // n4: test and usability adjacent.
        "usability test",
    ])
}

#[test]
fn section_2_2_1_conjunction() {
    // {n | ∃p1 hasToken(p1,'test') ∧ ∃p2 hasToken(p2,'usability')}
    let e = engine();
    let r = e
        .search("SOME p1 SOME p2 (p1 HAS 'test' AND p2 HAS 'usability')")
        .unwrap();
    assert_eq!(r.node_ids(), vec![1, 4]);
}

#[test]
fn section_2_2_1_distance() {
    // 'test' and 'usability' with at most 5 intervening tokens.
    let e = engine();
    let r = e
        .search("SOME p1 SOME p2 (p1 HAS 'test' AND p2 HAS 'usability' AND distance(p1,p2,5))")
        .unwrap();
    assert_eq!(r.node_ids(), vec![4]);
}

#[test]
fn section_2_2_1_double_occurrence_without_usability() {
    // Two occurrences of 'test' and no 'usability'.
    let e = engine();
    let q = "SOME p1 SOME p2 (p1 HAS 'test' AND p2 HAS 'test' AND diffpos(p1,p2)) \
             AND NOT 'usability'";
    let r = e.search(q).unwrap();
    assert_eq!(r.node_ids(), vec![2]);
}

#[test]
fn section_4_1_bool_example() {
    let e = engine();
    let r = e
        .search_with("'test' AND NOT 'usability'", Mode::Bool, EngineKind::Auto)
        .unwrap();
    assert_eq!(r.node_ids(), vec![2]);
}

#[test]
fn section_5_3_bool_noneg_example() {
    let e = Ftsl::from_texts(&[
        "software users",
        "software users testing",
        "usability",
        "software testing",
    ]);
    let r = e
        .search_with(
            "('software' AND 'users' AND NOT 'testing') OR 'usability'",
            Mode::Bool,
            EngineKind::Auto,
        )
        .unwrap();
    assert_eq!(r.node_ids(), vec![0, 2]);
}

#[test]
fn section_5_5_1_walkthrough_positions() {
    // The inverted lists of Figure 2: usability at {3,12,39}, software at
    // {25,29,42}; only (39,42) satisfies distance 5. We reproduce the exact
    // offsets with filler tokens.
    let mut words = vec!["w"; 43];
    words[3] = "usability";
    words[12] = "usability";
    words[39] = "usability";
    words[25] = "software";
    words[29] = "software";
    words[42] = "software";
    let text = words.join(" ");
    let e = Ftsl::from_texts(&[text.as_str()]);
    let r = e
        .search("SOME p1 SOME p2 (p1 HAS 'usability' AND p2 HAS 'software' AND distance(p1,p2,5))")
        .unwrap();
    assert_eq!(r.node_ids(), vec![0]);
    // The streaming engine touches each list position at most once:
    // 3 + 3 = 6 positions, not the 9 pairs of the cartesian product.
    assert!(r.counters.positions <= 6, "counters: {:?}", r.counters);
}

#[test]
fn section_5_6_2_not_distance_example() {
    // π(σ_not-distance(att1,att2,40)(R_assignment ⋈ R_judge))
    let filler = ["x"; 45].join(" ");
    let e = Ftsl::from_texts(&[
        format!("assignment {} judge", ["x"; 10].join(" ")),
        format!("assignment {filler} judge"),
        format!("judge {filler} assignment"),
    ]);
    let r = e
        .search(
            "SOME p1 SOME p2 (p1 HAS 'assignment' AND p2 HAS 'judge' \
             AND not_distance(p1,p2,40))",
        )
        .unwrap();
    assert_eq!(r.node_ids(), vec![1, 2]);
}

#[test]
fn theorem_3_and_5_witnesses() {
    let e = Ftsl::from_texts(&["t1", "t1 t2"]);
    let r = e.search("SOME p1 (NOT p1 HAS 't1')").unwrap();
    assert_eq!(r.node_ids(), vec![1]);

    let e = Ftsl::from_texts(&["t1 t2 t1", "t1 t2 t1 t2"]);
    let r = e
        .search("SOME p1 SOME p2 (p1 HAS 't1' AND p2 HAS 't2' AND NOT distance(p1,p2,0))")
        .unwrap();
    assert_eq!(r.node_ids(), vec![1]);
}

#[test]
fn example_1_use_case_10_4() {
    let e = Ftsl::from_texts(&[
        "the efficient way to reach task completion",
        "task completion is efficient",
    ]);
    let q = "SOME p1 SOME p2 SOME p3 (p1 HAS 'efficient' AND p2 HAS 'task' \
             AND p3 HAS 'completion' AND ordered(p1,p2) AND ordered(p2,p3) \
             AND distance(p2,p3,0) AND distance(p1,p2,10))";
    let r = e.search(q).unwrap();
    assert_eq!(r.node_ids(), vec![0]);
}
