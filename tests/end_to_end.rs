//! End-to-end facade behaviour on a synthetic corpus: classification,
//! dispatch, ranking, and explain output.

use ftsl::core::{Ftsl, RankModel};
use ftsl::corpus::SynthConfig;
use ftsl::exec::engine::EngineUsed;
use ftsl::lang::LanguageClass;

fn engine() -> Ftsl {
    let corpus = SynthConfig::small()
        .plant("kernel", 0.4, 3)
        .plant("scheduler", 0.3, 2)
        .build();
    Ftsl::from_corpus(corpus)
}

#[test]
fn dispatch_covers_the_hierarchy() {
    let e = engine();
    let cases: &[(&str, LanguageClass, EngineUsed)] = &[
        (
            "'kernel' AND 'scheduler'",
            LanguageClass::BoolNoNeg,
            EngineUsed::Bool,
        ),
        ("NOT 'kernel'", LanguageClass::Bool, EngineUsed::Bool),
        (
            "dist('kernel','scheduler',8)",
            LanguageClass::Dist,
            EngineUsed::Ppred,
        ),
        (
            "SOME a SOME b (a HAS 'kernel' AND b HAS 'scheduler' AND ordered(a,b))",
            LanguageClass::Ppred,
            EngineUsed::Ppred,
        ),
        (
            "SOME a SOME b (a HAS 'kernel' AND b HAS 'kernel' AND diffpos(a,b))",
            LanguageClass::Npred,
            EngineUsed::Npred,
        ),
        (
            "EVERY a (a HAS 'kernel')",
            LanguageClass::Comp,
            EngineUsed::Comp,
        ),
    ];
    for (q, class, used) in cases {
        let out = e.search(q).unwrap();
        assert_eq!(out.class, *class, "class of {q}");
        assert_eq!(out.engine, *used, "engine of {q}");
    }
}

#[test]
fn ranked_results_are_sorted_and_consistent_with_boolean_results() {
    let e = engine();
    let q = "'kernel' AND 'scheduler'";
    let boolean = e.search(q).unwrap();
    for model in [RankModel::TfIdf, RankModel::Pra] {
        let ranked = e.search_ranked(q, model).unwrap();
        let mut ranked_nodes: Vec<_> = ranked.hits.iter().map(|(n, _)| *n).collect();
        ranked_nodes.sort_unstable();
        assert_eq!(ranked_nodes, boolean.nodes, "{model:?} support mismatch");
        for w in ranked.hits.windows(2) {
            assert!(w[0].1 >= w[1].1, "not sorted: {:?}", ranked.hits);
        }
    }
}

#[test]
fn explain_is_informative_for_each_tier() {
    let e = engine();
    let text = e.explain("'kernel' AND 'scheduler'").unwrap();
    assert!(text.contains("BOOL"));
    let text = e
        .explain("SOME a SOME b (a HAS 'kernel' AND b HAS 'scheduler' AND distance(a,b,4))")
        .unwrap();
    assert!(text.contains("PPRED") && text.contains("scan (\"kernel\")"));
    let text = e.explain("EVERY a (a HAS 'kernel')").unwrap();
    assert!(text.contains("COMP") && text.contains("algebra"));
}

#[test]
fn custom_predicates_extend_the_language() {
    use ftsl::model::Position;
    use ftsl::predicates::{PredKind, Predicate};
    use std::sync::Arc;

    // A user-defined predicate: both positions in the first sentence.
    #[derive(Debug)]
    struct FirstSentence;
    impl Predicate for FirstSentence {
        fn name(&self) -> &str {
            "first_sentence"
        }
        fn arity(&self) -> usize {
            2
        }
        fn num_consts(&self) -> usize {
            0
        }
        fn kind(&self) -> PredKind {
            PredKind::General
        }
        fn eval(&self, positions: &[Position], _: &[i64]) -> bool {
            positions.iter().all(|p| p.sentence == 0)
        }
    }

    let mut e = Ftsl::from_texts(&[
        "kernel and scheduler together. nothing more",
        "kernel alone here. scheduler arrives in sentence two",
    ]);
    e.registry_mut().register(Arc::new(FirstSentence));
    let out = e
        .search("SOME a SOME b (a HAS 'kernel' AND b HAS 'scheduler' AND first_sentence(a,b))")
        .unwrap();
    assert_eq!(out.node_ids(), vec![0]);
    // General predicates force the COMP engine.
    assert_eq!(out.engine, EngineUsed::Comp);
}

#[test]
fn facade_survives_edge_cases() {
    let e = Ftsl::from_texts(&["", "x", ""]);
    assert!(e.search("'missing'").unwrap().is_empty());
    assert_eq!(e.search("NOT 'missing'").unwrap().node_ids(), vec![0, 1, 2]);
    assert_eq!(e.search("ANY").unwrap().node_ids(), vec![1]);
    let ranked = e.search_ranked("'x'", RankModel::TfIdf).unwrap();
    assert_eq!(ranked.hits.len(), 1);
}

#[test]
fn analyzed_engine_conflates_morphological_variants() {
    use ftsl::model::analysis::AnalysisConfig;
    let e = Ftsl::from_texts_analyzed(
        &[
            "the tests are passing",
            "this test passed yesterday",
            "nothing to see here",
        ],
        AnalysisConfig::english(),
    );
    // Query uses a different surface form than either document.
    let r = e.search("'testing'").unwrap();
    assert_eq!(r.node_ids(), vec![0, 1]);
    // Stop words match nothing (they were never indexed).
    let r = e.search("'the'").unwrap();
    assert!(r.is_empty());
    // But their negation matches everything, preserving Boolean semantics.
    let r = e.search("NOT 'the'").unwrap();
    assert_eq!(r.node_ids(), vec![0, 1, 2]);
}

#[test]
fn thesaurus_expansion_widens_matches_in_class() {
    use ftsl::lang::Thesaurus;
    let mut e = Ftsl::from_texts(&[
        "the car drove away",
        "an automobile approached",
        "the bike stayed",
    ]);
    let before = e.search("'car'").unwrap();
    assert_eq!(before.node_ids(), vec![0]);

    let mut th = Thesaurus::new();
    th.add("car", &["automobile"]);
    e.set_thesaurus(th);
    let after = e.search("'car'").unwrap();
    assert_eq!(after.node_ids(), vec![0, 1]);

    // Expansion inside a COMP proximity query stays streaming-evaluable.
    let r = e
        .search("SOME p1 SOME p2 (p1 HAS 'car' AND p2 HAS 'away' AND distance(p1,p2,5))")
        .unwrap();
    assert_eq!(r.node_ids(), vec![0]);
    assert_eq!(r.engine, EngineUsed::Ppred);
}

#[test]
fn top_k_truncates_ranked_results() {
    let e = engine();
    let full = e.search_ranked("'kernel'", RankModel::TfIdf).unwrap();
    assert!(full.hits.len() > 2);
    let top2 = e.search_top_k("'kernel'", RankModel::TfIdf, 2).unwrap();
    assert_eq!(top2.hits.len(), 2);
    assert_eq!(top2.hits[..], full.hits[..2]);
}
