//! Intra-repo link check over the markdown documentation: every relative
//! link in `README.md` and `docs/*.md` must point at a file (or directory)
//! that exists. Run by `cargo test` and by the CI link-check step, so docs
//! can't silently rot when files move.

use std::path::{Path, PathBuf};

/// Extract `(target, line)` pairs from inline markdown links `[text](target)`.
fn markdown_links(text: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            // Find "](", then capture until the matching ')'.
            if bytes[i] == b']' && i + 1 < bytes.len() && bytes[i + 1] == b'(' {
                let start = i + 2;
                if let Some(rel_end) = line[start..].find(')') {
                    out.push((line[start..start + rel_end].to_string(), lineno + 1));
                    i = start + rel_end;
                }
            }
            i += 1;
        }
    }
    out
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn check_file(path: &Path, failures: &mut Vec<String>) {
    let text = std::fs::read_to_string(path).expect("doc file readable");
    let dir = path.parent().expect("doc file has a parent");
    for (target, line) in markdown_links(&text) {
        // External links, in-page anchors, and autolink-ish targets are out
        // of scope for an *intra-repo* check.
        if target.starts_with("http://")
            || target.starts_with("https://")
            || target.starts_with("mailto:")
            || target.starts_with('#')
            || target.is_empty()
        {
            continue;
        }
        let file_part = target.split('#').next().unwrap_or(&target);
        let resolved = dir.join(file_part);
        if !resolved.exists() {
            failures.push(format!(
                "{}:{line}: dangling link `{target}` (resolved to {})",
                path.display(),
                resolved.display()
            ));
        }
    }
}

#[test]
fn no_dangling_intra_repo_links() {
    let root = repo_root();
    let mut targets = vec![root.join("README.md"), root.join("CHANGES.md")];
    let docs = root.join("docs");
    if docs.is_dir() {
        for entry in std::fs::read_dir(&docs).expect("docs/ readable") {
            let path = entry.expect("dir entry").path();
            if path.extension().is_some_and(|e| e == "md") {
                targets.push(path);
            }
        }
    }
    assert!(
        targets.iter().filter(|t| t.exists()).count() >= 3,
        "link check found too few docs — did README.md or docs/ move?"
    );

    let mut failures = Vec::new();
    for target in targets.iter().filter(|t| t.exists()) {
        check_file(target, &mut failures);
    }
    assert!(
        failures.is_empty(),
        "dangling documentation links:\n{}",
        failures.join("\n")
    );
}

#[test]
fn link_extractor_finds_inline_links() {
    let links = markdown_links("see [a](docs/A.md) and [b](https://x.test/y#z)\n[c](#frag)");
    assert_eq!(
        links,
        vec![
            ("docs/A.md".to_string(), 1),
            ("https://x.test/y#z".to_string(), 1),
            ("#frag".to_string(), 2),
        ]
    );
}
